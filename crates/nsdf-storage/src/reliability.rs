//! Resilience layers: failure injection, retries, hedging, circuit
//! breaking, and end-to-end payload integrity.
//!
//! Wide-area transfers fail; the NSDF testbed papers (refs \[2\], \[12\])
//! treat transient request failures as a fact of life. `FlakyStore`
//! injects deterministic, seed-driven failures into any inner store so
//! tests and benches can exercise error paths (it is a thin uniform-rate
//! wrapper over the scripted [`crate::fault::FaultStore`]), and
//! `RetryStore` layers bounded exponential-backoff retries — optionally
//! with hedged backup waves — on top, charging all waiting to the virtual
//! clock. `BreakerStore` adds a per-endpoint circuit breaker so a dead
//! endpoint fails fast instead of burning retry budget, and
//! `IntegrityStore` verifies payload checksums against stored metadata so
//! corrupted-in-flight payloads surface as retryable I/O errors. The
//! stack proves end-to-end that a lossy substrate still yields correct
//! datasets.

use crate::fault::{FaultPlan, FaultStore};
use crate::store::{ObjectMeta, ObjectStore, Priority};
use nsdf_util::obs::{Counter, Gauge, Obs};
use nsdf_util::{fnv1a64, secs_to_ns, NsdfError, Result, SimClock};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which operations may be failed by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailScope {
    /// Only reads (get/get_range/head/list).
    Reads,
    /// Only writes (put/delete).
    Writes,
    /// Everything.
    All,
}

/// A store that fails a deterministic fraction of operations.
///
/// Kept as the simple entry point for uniform i.i.d. fault injection; it
/// delegates to a [`FaultStore`] running a window-less [`FaultPlan`], so a
/// key's failure decision is a pure function of `(seed, key, attempt)` —
/// batch composition cannot change which keys fail.
pub struct FlakyStore {
    inner: FaultStore,
    fail_rate: f64,
}

impl FlakyStore {
    /// Fail `fail_rate` of in-scope operations with an I/O error.
    pub fn new(
        inner: Arc<dyn ObjectStore>,
        fail_rate: f64,
        scope: FailScope,
        seed: u64,
    ) -> Result<Self> {
        let plan = FaultPlan::new(seed).with_fault_rate(fail_rate).with_scope(scope);
        Ok(FlakyStore {
            inner: FaultStore::with_label(inner, plan, SimClock::new(), "flaky")?,
            fail_rate,
        })
    }

    /// Report the injected-failure count into `obs` (scope `…flaky`).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.inner = self.inner.with_obs(obs);
        self
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.inner.injected_failures()
    }
}

impl ObjectStore for FlakyStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        self.inner.put(key, data)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.inner.get_range(key, offset, len)
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        self.inner.get_many(keys)
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        self.inner.put_many(items)
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.inner.head(key)
    }

    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        self.inner.head_many(keys)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)
    }

    fn describe(&self) -> String {
        format!(
            "{} with {:.0}% injected failures",
            self.inner.inner_describe(),
            self.fail_rate * 100.0
        )
    }

    fn set_wave_priority(&self, priority: Priority) {
        self.inner.set_wave_priority(priority);
    }
}

/// Retry policy for [`RetryStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (>= 1), including the first.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds.
    pub initial_backoff_secs: f64,
    /// Backoff multiplier per subsequent attempt.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    /// Three attempts, 100 ms initial backoff, doubling.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.1, multiplier: 2.0 }
    }
}

/// Hedged-request policy for [`RetryStore::get_many`].
///
/// When a primary wave leaves transient failures behind, the store waits a
/// short virtual `delay_secs` (far below a backoff step) and launches a
/// backup wave for just those keys — first success wins. Hedge waves hit
/// the inner store like any other request, so their cost lands on the WAN
/// model; they do not consume retry attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Virtual delay before a backup wave, in seconds.
    pub delay_secs: f64,
    /// Maximum backup waves per retry round (>= 1).
    pub max_hedges: u32,
}

impl Default for HedgePolicy {
    /// One backup wave after 20 ms.
    fn default() -> Self {
        HedgePolicy { delay_secs: 0.02, max_hedges: 1 }
    }
}

/// A store that retries transient failures with exponential backoff.
///
/// Only I/O-class errors are retried; `NotFound`/`InvalidArg`/`Corrupt`
/// are permanent and propagate immediately. Backoff sleeps advance the
/// virtual clock, so retries show up in end-to-end virtual timings.
/// [`RetryStore::with_hedging`] adds hedged backup waves to `get_many`.
pub struct RetryStore {
    inner: Arc<dyn ObjectStore>,
    policy: RetryPolicy,
    hedge: Option<HedgePolicy>,
    clock: SimClock,
    m: RetryMetrics,
}

/// Registry handles for one `RetryStore`, under the `retry` scope.
///
/// `backoff_vns` mirrors every backoff clock charge in integer nanoseconds
/// (via [`secs_to_ns`]); `waves` counts backoff episodes, so "one backoff
/// charge per wave" is directly assertable: `backoff_vns` grows by exactly
/// one policy step each time `waves` ticks. Hedge accounting is separate:
/// `hedge_waves`/`hedge_vns` count backup waves and their (short) delays,
/// `hedges` the keys hedged, and `hedge_wins` the keys a backup rescued
/// before any backoff was paid.
struct RetryMetrics {
    retries: Counter,
    waves: Counter,
    backoff_vns: Counter,
    hedges: Counter,
    hedge_waves: Counter,
    hedge_wins: Counter,
    hedge_vns: Counter,
}

impl RetryMetrics {
    fn new(obs: &Obs) -> Self {
        let obs = obs.scoped("retry");
        RetryMetrics {
            retries: obs.counter("retries"),
            waves: obs.counter("waves"),
            backoff_vns: obs.counter("backoff_vns"),
            hedges: obs.counter("hedges"),
            hedge_waves: obs.counter("hedge_waves"),
            hedge_wins: obs.counter("hedge_wins"),
            hedge_vns: obs.counter("hedge_vns"),
        }
    }
}

impl RetryStore {
    /// Wrap `inner` with `policy`, charging backoff to `clock`.
    pub fn new(inner: Arc<dyn ObjectStore>, policy: RetryPolicy, clock: SimClock) -> Result<Self> {
        if policy.max_attempts == 0 {
            return Err(NsdfError::invalid("retry policy needs at least one attempt"));
        }
        Ok(RetryStore { inner, policy, hedge: None, clock, m: RetryMetrics::new(&Obs::default()) })
    }

    /// Enable hedged backup waves on `get_many`.
    pub fn with_hedging(mut self, hedge: HedgePolicy) -> Result<Self> {
        if hedge.delay_secs < 0.0 {
            return Err(NsdfError::invalid("hedge delay must be non-negative"));
        }
        if hedge.max_hedges == 0 {
            return Err(NsdfError::invalid("hedge policy needs at least one backup wave"));
        }
        self.hedge = Some(hedge);
        Ok(self)
    }

    /// Report retry accounting into `obs` (scope `…retry`).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = RetryMetrics::new(obs);
        self
    }

    /// Keys rescued by a hedged backup wave so far.
    pub fn hedge_wins(&self) -> u64 {
        self.m.hedge_wins.get()
    }

    /// Total retry attempts performed (excludes first attempts).
    pub fn retries(&self) -> u64 {
        self.m.retries.get()
    }

    /// Charge one backoff episode (a "wave": one shared sleep covering
    /// `keys_retried` keys) and return the next backoff value.
    fn charge_backoff(&self, backoff: f64, keys_retried: u64) -> f64 {
        self.m.retries.add(keys_retried);
        self.m.waves.inc();
        self.m.backoff_vns.add(secs_to_ns(backoff));
        self.clock.advance_secs(backoff);
        backoff * self.policy.multiplier
    }

    fn with_retries<T>(&self, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let mut backoff = self.policy.initial_backoff_secs;
        let mut attempt = 1;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(NsdfError::Io(e)) if attempt < self.policy.max_attempts => {
                    let _ = e; // transient: retry after backoff
                    backoff = self.charge_backoff(backoff, 1);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl ObjectStore for RetryStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        self.with_retries(|| self.inner.put(key, data))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.with_retries(|| self.inner.get(key))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_retries(|| self.inner.get_range(key, offset, len))
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        // Wave-based retry: re-batch all transiently failed keys and retry
        // them together, charging one shared backoff per wave (concurrent
        // retries back off in parallel, not in sequence). Permanent errors
        // resolve immediately; the retry counter still counts per key so
        // it agrees with the single-get accounting. With hedging enabled,
        // each round may launch backup waves for its transient failures
        // after a short hedge delay — rescued keys skip the backoff wave
        // entirely, the rest fall through to the normal schedule.
        let mut out: Vec<Option<Result<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        let mut backoff = self.policy.initial_backoff_secs;
        let mut attempt = 1;
        loop {
            let wave: Vec<&str> = pending.iter().map(|&i| keys[i]).collect();
            let results = self.inner.get_many(&wave);
            let mut next = Vec::new();
            for (&i, r) in pending.iter().zip(results) {
                match r {
                    Err(NsdfError::Io(_)) if attempt < self.policy.max_attempts => next.push(i),
                    r => out[i] = Some(r),
                }
            }
            if let Some(hedge) = self.hedge {
                let mut round = 0;
                while round < hedge.max_hedges && !next.is_empty() {
                    self.m.hedge_waves.inc();
                    self.m.hedge_vns.add(secs_to_ns(hedge.delay_secs));
                    self.clock.advance_secs(hedge.delay_secs);
                    let hedge_keys: Vec<&str> = next.iter().map(|&i| keys[i]).collect();
                    self.m.hedges.add(hedge_keys.len() as u64);
                    let hedge_results = self.inner.get_many(&hedge_keys);
                    let mut still = Vec::new();
                    for (&i, r) in next.iter().zip(hedge_results) {
                        match r {
                            Err(NsdfError::Io(_)) => still.push(i),
                            r => {
                                self.m.hedge_wins.inc();
                                out[i] = Some(r);
                            }
                        }
                    }
                    next = still;
                    round += 1;
                }
            }
            if next.is_empty() {
                break;
            }
            backoff = self.charge_backoff(backoff, next.len() as u64);
            attempt += 1;
            pending = next;
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        // Wave-based retry exactly like `get_many`, minus hedging: a
        // hedged backup wave would race two writes of the same key, and
        // "first ack wins" is not a coherent write semantic. Transiently
        // failed keys re-batch and share one backoff per wave.
        let mut out: Vec<Option<Result<ObjectMeta>>> = items.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..items.len()).collect();
        let mut backoff = self.policy.initial_backoff_secs;
        let mut attempt = 1;
        loop {
            let wave: Vec<(&str, &[u8])> = pending.iter().map(|&i| items[i]).collect();
            let results = self.inner.put_many(&wave);
            let mut next = Vec::new();
            for (&i, r) in pending.iter().zip(results) {
                match r {
                    Err(NsdfError::Io(_)) if attempt < self.policy.max_attempts => next.push(i),
                    r => out[i] = Some(r),
                }
            }
            if next.is_empty() {
                break;
            }
            backoff = self.charge_backoff(backoff, next.len() as u64);
            attempt += 1;
            pending = next;
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.with_retries(|| self.inner.head(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.with_retries(|| self.inner.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.with_retries(|| self.inner.delete(key))
    }

    fn describe(&self) -> String {
        format!("{} with {}-attempt retry", self.inner.describe(), self.policy.max_attempts)
    }

    fn set_wave_priority(&self, priority: Priority) {
        self.inner.set_wave_priority(priority);
    }
}

/// Circuit-breaker policy for [`BreakerStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive transient failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual seconds the breaker stays open before probing (half-open).
    pub cooldown_secs: f64,
    /// Consecutive half-open successes that close the breaker again.
    pub success_threshold: u32,
}

impl Default for BreakerPolicy {
    /// Trip after 5 consecutive failures, probe after 1 virtual second,
    /// close after 2 probe successes.
    fn default() -> Self {
        BreakerPolicy { failure_threshold: 5, cooldown_secs: 1.0, success_threshold: 2 }
    }
}

/// Circuit-breaker state, visible through [`BreakerStore::state`] and the
/// `breaker.state` gauge (0 = closed, 1 = open, 2 = half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive transient failures are counted.
    Closed,
    /// Requests fail fast without touching the endpoint.
    Open,
    /// Cooldown elapsed; probe requests flow, one failure re-opens.
    HalfOpen,
}

struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    opened_at_ns: u64,
}

/// Registry handles for one `BreakerStore`, under the `breaker` scope.
struct BreakerMetrics {
    obs: Obs,
    opened: Counter,
    half_opened: Counter,
    closed: Counter,
    fast_failures: Counter,
    state: Gauge,
}

impl BreakerMetrics {
    fn new(obs: &Obs) -> Self {
        let obs = obs.scoped("breaker");
        BreakerMetrics {
            opened: obs.counter("opened"),
            half_opened: obs.counter("half_opened"),
            closed: obs.counter("closed"),
            fast_failures: obs.counter("fast_failures"),
            state: obs.gauge("state"),
            obs,
        }
    }
}

/// A per-endpoint circuit breaker over any [`ObjectStore`].
///
/// Closed → open after `failure_threshold` consecutive transient (I/O)
/// failures; open fast-fails every request *without touching the inner
/// store* (so a dark endpoint costs nothing on the WAN model) until
/// `cooldown_secs` of virtual time elapse; the first request after
/// cooldown half-opens the breaker and probes the endpoint — a probe
/// failure re-opens it, `success_threshold` consecutive successes close
/// it. All transitions land in the observability registry as counters,
/// a state gauge, and instantaneous `breaker.open` / `breaker.half_open` /
/// `breaker.closed` span events on the virtual timeline.
///
/// `NotFound` and other permanent errors are responses from a live
/// endpoint, so they count as successes.
pub struct BreakerStore {
    inner: Arc<dyn ObjectStore>,
    policy: BreakerPolicy,
    clock: SimClock,
    core: Mutex<BreakerCore>,
    m: BreakerMetrics,
}

impl BreakerStore {
    /// Wrap `inner` with `policy`, timing the cooldown on `clock`.
    pub fn new(
        inner: Arc<dyn ObjectStore>,
        policy: BreakerPolicy,
        clock: SimClock,
    ) -> Result<Self> {
        if policy.failure_threshold == 0 || policy.success_threshold == 0 {
            return Err(NsdfError::invalid("breaker thresholds must be >= 1"));
        }
        if policy.cooldown_secs <= 0.0 {
            return Err(NsdfError::invalid("breaker cooldown must be positive"));
        }
        Ok(BreakerStore {
            inner,
            policy,
            clock,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                half_open_successes: 0,
                opened_at_ns: 0,
            }),
            m: BreakerMetrics::new(&Obs::default()),
        })
    }

    /// Report breaker accounting into `obs` (scope `…breaker`).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = BreakerMetrics::new(obs);
        self
    }

    /// The breaker's current state (open may lazily report half-open once
    /// the cooldown has elapsed and a request arrives).
    pub fn state(&self) -> BreakerState {
        self.core.lock().state
    }

    /// Requests fast-failed while open.
    pub fn fast_failures(&self) -> u64 {
        self.m.fast_failures.get()
    }

    fn open_error(&self) -> NsdfError {
        NsdfError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "circuit breaker open: endpoint fast-failed",
        ))
    }

    /// Admit `n` requests, or fast-fail them all. Transitions open →
    /// half-open when the cooldown has elapsed on the virtual clock.
    fn admit(&self, n: u64) -> bool {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let reopen_at = core.opened_at_ns + secs_to_ns(self.policy.cooldown_secs);
                if self.clock.now_ns() >= reopen_at {
                    core.state = BreakerState::HalfOpen;
                    core.half_open_successes = 0;
                    self.m.half_opened.inc();
                    self.m.state.set(2.0);
                    self.m.obs.event("half_open");
                    true
                } else {
                    self.m.fast_failures.add(n);
                    false
                }
            }
        }
    }

    fn trip(&self, core: &mut BreakerCore) {
        core.state = BreakerState::Open;
        core.opened_at_ns = self.clock.now_ns();
        core.consecutive_failures = 0;
        core.half_open_successes = 0;
        self.m.opened.inc();
        self.m.state.set(1.0);
        self.m.obs.event("open");
    }

    /// Record one outcome. Transient (I/O) failures drive the breaker;
    /// permanent errors are live-endpoint responses and count as success.
    fn record(&self, ok: bool) {
        let mut core = self.core.lock();
        match (core.state, ok) {
            (BreakerState::Closed, true) => core.consecutive_failures = 0,
            (BreakerState::Closed, false) => {
                core.consecutive_failures += 1;
                if core.consecutive_failures >= self.policy.failure_threshold {
                    self.trip(&mut core);
                }
            }
            (BreakerState::HalfOpen, true) => {
                core.half_open_successes += 1;
                if core.half_open_successes >= self.policy.success_threshold {
                    core.state = BreakerState::Closed;
                    core.consecutive_failures = 0;
                    self.m.closed.inc();
                    self.m.state.set(0.0);
                    self.m.obs.event("closed");
                }
            }
            (BreakerState::HalfOpen, false) => self.trip(&mut core),
            (BreakerState::Open, _) => {}
        }
    }

    fn guarded<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        if !self.admit(1) {
            return Err(self.open_error());
        }
        let r = f();
        self.record(!matches!(&r, Err(NsdfError::Io(_))));
        r
    }
}

impl ObjectStore for BreakerStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        self.guarded(|| self.inner.put(key, data))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.guarded(|| self.inner.get(key))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.guarded(|| self.inner.get_range(key, offset, len))
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        if !self.admit(keys.len() as u64) {
            return keys.iter().map(|_| Err(self.open_error())).collect();
        }
        let results = self.inner.get_many(keys);
        for r in &results {
            self.record(!matches!(r, Err(NsdfError::Io(_))));
        }
        results
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        if !self.admit(items.len() as u64) {
            return items.iter().map(|_| Err(self.open_error())).collect();
        }
        let results = self.inner.put_many(items);
        for r in &results {
            self.record(!matches!(r, Err(NsdfError::Io(_))));
        }
        results
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.guarded(|| self.inner.head(key))
    }

    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        if !self.admit(keys.len() as u64) {
            return keys.iter().map(|_| Err(self.open_error())).collect();
        }
        let results = self.inner.head_many(keys);
        for r in &results {
            self.record(!matches!(r, Err(NsdfError::Io(_))));
        }
        results
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.guarded(|| self.inner.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.guarded(|| self.inner.delete(key))
    }

    fn describe(&self) -> String {
        format!(
            "{} behind a circuit breaker ({} failures open it)",
            self.inner.describe(),
            self.policy.failure_threshold
        )
    }

    fn set_wave_priority(&self, priority: Priority) {
        self.inner.set_wave_priority(priority);
    }
}

/// Registry handles for one `IntegrityStore`, under the `integrity` scope.
struct IntegrityMetrics {
    verified: Counter,
    rejected: Counter,
}

impl IntegrityMetrics {
    fn new(obs: &Obs) -> Self {
        let obs = obs.scoped("integrity");
        IntegrityMetrics { verified: obs.counter("verified"), rejected: obs.counter("rejected") }
    }
}

/// End-to-end payload verification over any [`ObjectStore`].
///
/// Every `get`/`get_many` payload is checked against the FNV-1a checksum
/// the store's metadata carries ([`ObjectMeta::checksum`]); a mismatch —
/// e.g. a payload damaged in flight by a [`FaultStore`] corruption draw —
/// surfaces as a retryable I/O error, so a [`RetryStore`] above re-fetches
/// instead of handing corrupt bytes to the decoder. Batch verification
/// rides [`ObjectStore::head_many`], which the WAN model amortizes like
/// the data fetch itself. Ranged reads pass through unverified (there is
/// no whole-object checksum to check a fragment against).
///
/// Writes are verified symmetrically: the [`ObjectMeta`] a `put`/`put_many`
/// returns checksums what the endpoint actually stored, so comparing it
/// against the payload we sent catches write-path corruption — again as a
/// retryable I/O error, so the retry layer re-uploads clean bytes.
pub struct IntegrityStore {
    inner: Arc<dyn ObjectStore>,
    m: IntegrityMetrics,
}

impl IntegrityStore {
    /// Wrap `inner`, verifying full-object read payloads.
    pub fn new(inner: Arc<dyn ObjectStore>) -> Self {
        IntegrityStore { inner, m: IntegrityMetrics::new(&Obs::default()) }
    }

    /// Report verification accounting into `obs` (scope `…integrity`).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = IntegrityMetrics::new(obs);
        self
    }

    /// Payloads rejected for checksum mismatch so far.
    pub fn rejected(&self) -> u64 {
        self.m.rejected.get()
    }

    fn check(&self, key: &str, data: &[u8], meta: &ObjectMeta) -> Result<()> {
        if fnv1a64(data) == meta.checksum {
            self.m.verified.inc();
            Ok(())
        } else {
            self.m.rejected.inc();
            Err(NsdfError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("checksum mismatch for {key:?}: payload damaged in flight"),
            )))
        }
    }
}

impl ObjectStore for IntegrityStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        let meta = self.inner.put(key, data)?;
        self.check(key, data, &meta)?;
        Ok(meta)
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        let mut results = self.inner.put_many(items);
        for (r, (k, d)) in results.iter_mut().zip(items) {
            let verdict = match &*r {
                Ok(meta) => self.check(k, d, meta),
                Err(_) => Ok(()),
            };
            if let Err(e) = verdict {
                *r = Err(e);
            }
        }
        results
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        let data = self.inner.get(key)?;
        let meta = self.inner.head(key)?;
        self.check(key, &data, &meta)?;
        Ok(data)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.inner.get_range(key, offset, len)
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        let mut results = self.inner.get_many(keys);
        let ok_idx: Vec<usize> =
            results.iter().enumerate().filter(|(_, r)| r.is_ok()).map(|(i, _)| i).collect();
        if ok_idx.is_empty() {
            return results;
        }
        let ok_keys: Vec<&str> = ok_idx.iter().map(|&i| keys[i]).collect();
        let metas = self.inner.head_many(&ok_keys);
        for (&i, meta) in ok_idx.iter().zip(metas) {
            let verdict = match meta {
                Ok(meta) => {
                    let data = results[i].as_ref().expect("index filtered on Ok");
                    self.check(keys[i], data, &meta)
                }
                // The payload arrived but its checksum did not: treat the
                // pair as one failed (retryable) fetch.
                Err(e) => Err(e),
            };
            if let Err(e) = verdict {
                results[i] = Err(e);
            }
        }
        results
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.inner.head(key)
    }

    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        self.inner.head_many(keys)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)
    }

    fn describe(&self) -> String {
        format!("{} with checksum verification", self.inner.describe())
    }

    fn set_wave_priority(&self, priority: Priority) {
        self.inner.set_wave_priority(priority);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;

    fn flaky(rate: f64, scope: FailScope) -> Arc<FlakyStore> {
        Arc::new(FlakyStore::new(Arc::new(MemoryStore::new()), rate, scope, 7).unwrap())
    }

    #[test]
    fn zero_rate_never_fails() {
        let s = flaky(0.0, FailScope::All);
        for i in 0..100 {
            s.put(&format!("k{i}"), b"v").unwrap();
            s.get(&format!("k{i}")).unwrap();
        }
        assert_eq!(s.injected_failures(), 0);
    }

    #[test]
    fn full_rate_always_fails() {
        let s = flaky(1.0, FailScope::All);
        assert!(s.put("k", b"v").is_err());
        assert!(s.get("k").is_err());
        assert_eq!(s.injected_failures(), 2);
    }

    #[test]
    fn scope_limits_injection() {
        let s = flaky(1.0, FailScope::Reads);
        s.put("k", b"v").unwrap(); // writes unaffected
        assert!(s.get("k").is_err());
        let s = flaky(1.0, FailScope::Writes);
        assert!(s.put("k", b"v").is_err());
    }

    #[test]
    fn injection_is_deterministic() {
        let run = || {
            let s = flaky(0.3, FailScope::All);
            (0..50).map(|i| s.put(&format!("k{i}"), b"v").is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let s = flaky(0.3, FailScope::All);
        for i in 0..50 {
            let _ = s.put(&format!("k{i}"), b"v");
        }
        let injected = s.injected_failures();
        assert!((5..30).contains(&injected), "injected {injected} of 50 at 30%");
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::All);
        let retry = RetryStore::new(
            flaky.clone(),
            RetryPolicy { max_attempts: 10, initial_backoff_secs: 0.05, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        for i in 0..50 {
            retry.put(&format!("k{i}"), format!("v{i}").as_bytes()).unwrap();
        }
        for i in 0..50 {
            assert_eq!(retry.get(&format!("k{i}")).unwrap(), format!("v{i}").as_bytes());
        }
        assert!(retry.retries() > 0);
        assert!(clock.now_secs() > 0.0, "backoff must charge the clock");
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let clock = SimClock::new();
        let always_fail = flaky(1.0, FailScope::All);
        let retry = RetryStore::new(
            always_fail,
            RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.1, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        assert!(retry.get("k").is_err());
        assert_eq!(retry.retries(), 2); // 3 attempts = 2 retries
                                        // Backoff 0.1 + 0.2 charged.
        assert!((clock.now_secs() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn permanent_errors_not_retried() {
        let clock = SimClock::new();
        let retry =
            RetryStore::new(Arc::new(MemoryStore::new()), RetryPolicy::default(), clock.clone())
                .unwrap();
        assert!(retry.get("missing").unwrap_err().is_not_found());
        assert_eq!(retry.retries(), 0);
        assert_eq!(clock.now_secs(), 0.0);
    }

    #[test]
    fn flaky_get_many_draws_per_key() {
        // A batch must consume one injection decision per key, exactly like
        // n single gets with the same seed would.
        let keys: Vec<String> = (0..40).map(|i| format!("k{i}")).collect();
        let singles = {
            let s = flaky(0.3, FailScope::Reads);
            for k in &keys {
                s.put(k, b"v").unwrap();
            }
            keys.iter().map(|k| s.get(k).is_ok()).collect::<Vec<_>>()
        };
        let batched = {
            let s = flaky(0.3, FailScope::Reads);
            for k in &keys {
                s.put(k, b"v").unwrap();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            s.get_many(&refs).iter().map(|r| r.is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(singles, batched);
        assert!(singles.iter().any(|ok| !ok), "rate 0.3 over 40 keys injects something");
        assert!(singles.iter().any(|&ok| ok), "rate 0.3 over 40 keys passes something");
    }

    #[test]
    fn retry_get_many_recovers_in_waves() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::Reads);
        let retry = RetryStore::new(
            flaky.clone(),
            RetryPolicy { max_attempts: 10, initial_backoff_secs: 0.05, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        let keys: Vec<String> = (0..30).map(|i| format!("k{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            retry.put(k, format!("v{i}").as_bytes()).unwrap();
        }
        let before = clock.now_secs();
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let results = retry.get_many(&refs);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), format!("v{i}").as_bytes(), "key {i}");
        }
        assert!(retry.retries() > 0, "rate 0.4 over 30 keys must retry");
        // Waves share one backoff each: the clock charge is exactly the
        // per-wave schedule (0.05 doubling), while the retry counter counts
        // per key — strictly more retried keys than backoff episodes.
        let charged = clock.now_secs() - before;
        let waves = retry.m.waves.get();
        let schedule: f64 = (0..waves).map(|w| 0.05 * 2f64.powi(w as i32)).sum();
        assert!(charged > 0.0);
        assert!((charged - schedule).abs() < 1e-9, "one backoff per wave: {charged} vs {schedule}");
        assert!(retry.retries() > waves, "waves must be shared across keys");
    }

    #[test]
    fn retry_get_many_mixes_permanent_and_transient() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::Reads);
        let retry = RetryStore::new(flaky, RetryPolicy::default(), clock.clone()).unwrap();
        retry.put("present", b"yes").unwrap();
        // "absent" resolves as NotFound without burning retry attempts even
        // while its wave-mates retry transient failures.
        let results = retry.get_many(&["present", "absent"]);
        assert_eq!(results[0].as_ref().unwrap(), b"yes");
        assert!(results[1].as_ref().unwrap_err().is_not_found());
    }

    #[test]
    fn retry_get_many_gives_up_after_max_attempts() {
        let clock = SimClock::new();
        let always_fail = flaky(1.0, FailScope::All);
        let retry = RetryStore::new(
            always_fail,
            RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.1, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        let results = retry.get_many(&["a", "b"]);
        assert!(results.iter().all(|r| matches!(r, Err(NsdfError::Io(_)))));
        // Two keys x 2 retry waves; backoff charged once per wave.
        assert_eq!(retry.retries(), 4);
        assert!((clock.now_secs() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn retry_get_many_charges_one_backoff_per_wave() {
        // Satellite fault-path test: drive get_many through a flaky inner
        // and check, via the registry, that each retry wave charges exactly
        // one policy backoff step — and that the whole episode (per-key
        // outcomes, error text, clock charge) is deterministic.
        let policy = RetryPolicy { max_attempts: 4, initial_backoff_secs: 0.05, multiplier: 2.0 };
        let run = || {
            let obs = Obs::new(SimClock::new());
            let flaky = Arc::new(
                FlakyStore::new(Arc::new(MemoryStore::new()), 0.45, FailScope::Reads, 11)
                    .unwrap()
                    .with_obs(&obs),
            );
            let retry = RetryStore::new(flaky, policy, obs.clock().clone()).unwrap().with_obs(&obs);
            let keys: Vec<String> = (0..24).map(|i| format!("k{i}")).collect();
            for (i, k) in keys.iter().enumerate() {
                retry.put(k, format!("v{i}").as_bytes()).unwrap();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            let outcomes: Vec<String> = retry
                .get_many(&refs)
                .into_iter()
                .map(|r| match r {
                    Ok(v) => String::from_utf8(v).unwrap(),
                    Err(e) => format!("err: {e}"),
                })
                .collect();
            (obs.snapshot(), outcomes, obs.clock().now_ns())
        };

        let (snap, outcomes, clock_ns) = run();
        let waves = snap.counter("retry.waves");
        assert!(waves >= 1, "rate 0.45 over 24 keys must need at least one retry wave");
        assert!(waves <= (policy.max_attempts - 1) as u64);
        // One backoff charge per wave, stepping through the policy schedule.
        let expected_backoff: u64 = (0..waves)
            .map(|w| secs_to_ns(policy.initial_backoff_secs * policy.multiplier.powi(w as i32)))
            .sum();
        assert_eq!(snap.counter("retry.backoff_vns"), expected_backoff);
        assert_eq!(clock_ns, expected_backoff, "clock charge == sum of per-wave backoffs");
        assert!(snap.counter("retry.retries") >= waves, "each wave retries >= 1 key");
        assert!(snap.counter("flaky.injected") >= snap.counter("retry.retries"));

        // Deterministic error propagation: an identically-seeded run gives
        // identical per-key outcomes (including error text) and metrics.
        let (snap2, outcomes2, clock_ns2) = run();
        assert_eq!(outcomes, outcomes2);
        assert_eq!(snap.to_json(), snap2.to_json());
        assert_eq!(clock_ns, clock_ns2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let inner: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        assert!(FlakyStore::new(inner.clone(), 1.5, FailScope::All, 1).is_err());
        assert!(RetryStore::new(
            inner.clone(),
            RetryPolicy { max_attempts: 0, initial_backoff_secs: 0.1, multiplier: 2.0 },
            SimClock::new()
        )
        .is_err());
        let retry =
            RetryStore::new(inner.clone(), RetryPolicy::default(), SimClock::new()).unwrap();
        assert!(retry.with_hedging(HedgePolicy { delay_secs: -0.1, max_hedges: 1 }).is_err());
        let retry =
            RetryStore::new(inner.clone(), RetryPolicy::default(), SimClock::new()).unwrap();
        assert!(retry.with_hedging(HedgePolicy { delay_secs: 0.1, max_hedges: 0 }).is_err());
        assert!(BreakerStore::new(
            inner.clone(),
            BreakerPolicy { failure_threshold: 0, ..BreakerPolicy::default() },
            SimClock::new()
        )
        .is_err());
        assert!(BreakerStore::new(
            inner,
            BreakerPolicy { cooldown_secs: 0.0, ..BreakerPolicy::default() },
            SimClock::new()
        )
        .is_err());
    }

    #[test]
    fn flaky_draws_independent_of_batch_composition() {
        // Regression for the old global-op-counter draws: interleaving a
        // key with different batch-mates must not change its fate. Drive
        // the same key sequence through different groupings and require
        // identical per-key outcome streams.
        let keys: Vec<String> = (0..20).map(|i| format!("k{i}")).collect();
        let build = || {
            let s = flaky(0.5, FailScope::Reads);
            for k in &keys {
                s.put(k, b"v").unwrap();
            }
            s
        };
        // Grouping A: one batch of everything, three times.
        let a = {
            let s = build();
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            (0..3)
                .map(|_| s.get_many(&refs).iter().map(|r| r.is_ok()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        // Grouping B: pairs in reverse order, then singles — same number of
        // draws per key, radically different draw order overall.
        let b = {
            let s = build();
            let mut rounds: Vec<Vec<bool>> = vec![vec![false; keys.len()]; 3];
            for chunk in keys.chunks(2).rev() {
                let refs: Vec<&str> = chunk.iter().map(|k| k.as_str()).collect();
                let base = keys.iter().position(|k| k == &chunk[0]).unwrap();
                for (j, r) in s.get_many(&refs).iter().enumerate() {
                    rounds[0][base + j] = r.is_ok();
                }
            }
            for (i, k) in keys.iter().enumerate() {
                rounds[1][i] = s.get(k).is_ok();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            for (i, r) in s.get_many(&refs).iter().enumerate() {
                rounds[2][i] = r.is_ok();
            }
            rounds
        };
        assert_eq!(a, b, "per-key fate must be pure in (seed, key, attempt)");
    }

    #[test]
    fn hedged_get_many_rescues_failures_cheaper_than_backoff() {
        let run = |hedged: bool| {
            let obs = Obs::new(SimClock::new());
            let flaky = Arc::new(
                FlakyStore::new(Arc::new(MemoryStore::new()), 0.35, FailScope::Reads, 17)
                    .unwrap()
                    .with_obs(&obs),
            );
            let policy =
                RetryPolicy { max_attempts: 6, initial_backoff_secs: 0.1, multiplier: 2.0 };
            let mut retry =
                RetryStore::new(flaky, policy, obs.clock().clone()).unwrap().with_obs(&obs);
            if hedged {
                retry =
                    retry.with_hedging(HedgePolicy { delay_secs: 0.005, max_hedges: 1 }).unwrap();
            }
            let keys: Vec<String> = (0..40).map(|i| format!("k{i}")).collect();
            for (i, k) in keys.iter().enumerate() {
                retry.put(k, format!("v{i}").as_bytes()).unwrap();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            let results = retry.get_many(&refs);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.as_ref().unwrap(), format!("v{i}").as_bytes(), "key {i}");
            }
            (obs.clock().now_ns(), obs.snapshot(), retry.hedge_wins())
        };
        let (plain_ns, plain_snap, _) = run(false);
        let (hedged_ns, hedged_snap, wins) = run(true);
        assert!(wins > 0, "rate 0.35 over 40 keys must let some hedge win");
        assert_eq!(hedged_snap.counter("retry.hedge_wins"), wins);
        assert!(hedged_snap.counter("retry.hedge_waves") >= 1);
        assert!(
            hedged_ns < plain_ns,
            "hedging at 5 ms must beat 100 ms+ backoff waves: {hedged_ns} vs {plain_ns}"
        );
        // Hedge waves do not consume retry attempts, and the hedge clock
        // charge mirrors the delay schedule exactly.
        assert_eq!(
            hedged_snap.counter("retry.hedge_vns"),
            hedged_snap.counter("retry.hedge_waves") * secs_to_ns(0.005)
        );
        let _ = plain_snap;
    }

    #[test]
    fn hedging_is_deterministic() {
        let run = || {
            let obs = Obs::new(SimClock::new());
            let flaky = Arc::new(
                FlakyStore::new(Arc::new(MemoryStore::new()), 0.3, FailScope::Reads, 23)
                    .unwrap()
                    .with_obs(&obs),
            );
            let retry = RetryStore::new(flaky, RetryPolicy::default(), obs.clock().clone())
                .unwrap()
                .with_obs(&obs)
                .with_hedging(HedgePolicy::default())
                .unwrap();
            let keys: Vec<String> = (0..30).map(|i| format!("k{i}")).collect();
            for (i, k) in keys.iter().enumerate() {
                retry.put(k, format!("v{i}").as_bytes()).unwrap();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            let ok: Vec<bool> = retry.get_many(&refs).iter().map(|r| r.is_ok()).collect();
            (ok, obs.clock().now_ns(), obs.snapshot().to_json())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn breaker_trips_fast_fails_and_recovers() {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let dead = Arc::new(
            FlakyStore::new(Arc::new(MemoryStore::new()), 1.0, FailScope::Reads, 3).unwrap(),
        );
        let policy =
            BreakerPolicy { failure_threshold: 3, cooldown_secs: 0.5, success_threshold: 2 };
        let breaker =
            BreakerStore::new(dead.clone(), policy, clock.clone()).unwrap().with_obs(&obs);
        breaker.put("k", b"v").unwrap(); // writes pass (scope Reads)

        assert_eq!(breaker.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(breaker.get("k").is_err());
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        let injected_when_open = dead.injected_failures();

        // Open: fast-fail without touching the inner store.
        for _ in 0..5 {
            assert!(breaker.get("k").is_err());
        }
        assert_eq!(dead.injected_failures(), injected_when_open, "open breaker shields inner");
        assert_eq!(breaker.fast_failures(), 5);

        // Cooldown elapses on the virtual clock; next request half-opens
        // and probes. The endpoint is still dead, so the probe re-opens.
        clock.advance_secs(0.6);
        assert!(breaker.get("k").is_err());
        assert!(dead.injected_failures() > injected_when_open, "half-open probes the endpoint");
        assert_eq!(breaker.state(), BreakerState::Open);

        let snap = obs.snapshot();
        assert_eq!(snap.counter("breaker.opened"), 2, "tripped once, re-opened once");
        assert_eq!(snap.counter("breaker.half_opened"), 1);
        assert_eq!(snap.counter("breaker.fast_failures"), 5);
        assert_eq!(snap.gauge("breaker.state"), 1.0);
        // Transitions land on the span timeline as zero-duration events.
        let labels: Vec<String> = obs.span_tree().iter().map(|s| s.label.clone()).collect();
        assert!(labels.contains(&"breaker.open".to_string()));
        assert!(labels.contains(&"breaker.half_open".to_string()));
    }

    #[test]
    fn breaker_closes_after_probe_successes() {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        // Fails exactly while we trip the breaker, then the window ends and
        // the endpoint is healthy again — the scripted-outage shape.
        let plan = crate::fault::FaultPlan::new(1).error_burst(0.0, 1.0, 1.0);
        let inner = Arc::new(MemoryStore::new());
        inner.put("k", b"v").unwrap();
        let faulty = Arc::new(crate::fault::FaultStore::new(inner, plan, clock.clone()).unwrap());
        let policy =
            BreakerPolicy { failure_threshold: 2, cooldown_secs: 0.5, success_threshold: 2 };
        let breaker = BreakerStore::new(faulty, policy, clock.clone()).unwrap().with_obs(&obs);

        assert!(breaker.get("k").is_err());
        assert!(breaker.get("k").is_err());
        assert_eq!(breaker.state(), BreakerState::Open);
        clock.advance_secs(1.1); // past cooldown AND past the burst window
        assert!(breaker.get("k").is_ok(), "first probe succeeds");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.get("k").is_ok(), "second probe closes");
        assert_eq!(breaker.state(), BreakerState::Closed);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("breaker.opened"), 1);
        assert_eq!(snap.counter("breaker.closed"), 1);
        assert_eq!(snap.gauge("breaker.state"), 0.0);
    }

    #[test]
    fn breaker_batches_fast_fail_per_key() {
        let clock = SimClock::new();
        let dead = Arc::new(
            FlakyStore::new(Arc::new(MemoryStore::new()), 1.0, FailScope::Reads, 3).unwrap(),
        );
        let breaker = BreakerStore::new(
            dead,
            BreakerPolicy { failure_threshold: 2, ..BreakerPolicy::default() },
            clock,
        )
        .unwrap();
        let r = breaker.get_many(&["a", "b", "c"]);
        assert!(r.iter().all(|x| x.is_err()), "dead endpoint fails the batch and trips");
        assert_eq!(breaker.state(), BreakerState::Open);
        let r = breaker.get_many(&["a", "b", "c"]);
        assert!(r.iter().all(|x| x.is_err()));
        assert_eq!(breaker.fast_failures(), 3, "every key of the shed batch is counted");
    }

    #[test]
    fn not_found_does_not_trip_breaker() {
        let breaker = BreakerStore::new(
            Arc::new(MemoryStore::new()),
            BreakerPolicy { failure_threshold: 1, ..BreakerPolicy::default() },
            SimClock::new(),
        )
        .unwrap();
        for _ in 0..5 {
            assert!(breaker.get("missing").unwrap_err().is_not_found());
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn integrity_store_detects_corruption_and_retry_recovers() {
        let obs = Obs::new(SimClock::new());
        let inner = Arc::new(MemoryStore::new());
        let keys: Vec<String> = (0..40).map(|i| format!("k{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            inner.put(k, format!("payload-{i}").as_bytes()).unwrap();
        }
        let plan = crate::fault::FaultPlan::new(31).with_corrupt_rate(0.3);
        let faulty = Arc::new(
            crate::fault::FaultStore::new(inner, plan, obs.clock().clone()).unwrap().with_obs(&obs),
        );
        let verified = Arc::new(IntegrityStore::new(faulty.clone()).with_obs(&obs));

        // Unverified, corruption slips through: some payload differs.
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let raw = faulty.get_many(&refs);
        let damaged = raw
            .iter()
            .enumerate()
            .filter(|(i, r)| r.as_ref().unwrap() != format!("payload-{i}").as_bytes())
            .count();
        assert!(damaged > 0, "corrupt rate 0.3 over 40 keys must damage something");

        // Verified + retried: every payload comes back clean.
        let retry = RetryStore::new(
            verified,
            RetryPolicy { max_attempts: 8, initial_backoff_secs: 0.01, multiplier: 2.0 },
            obs.clock().clone(),
        )
        .unwrap()
        .with_obs(&obs);
        for (i, r) in retry.get_many(&refs).iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), format!("payload-{i}").as_bytes(), "key {i}");
        }
        let snap = obs.snapshot();
        assert!(snap.counter("integrity.rejected") > 0, "mismatches must be caught");
        assert!(snap.counter("integrity.verified") > 0);
        assert!(snap.counter("fault.corrupted") >= snap.counter("integrity.rejected"));
    }

    #[test]
    fn retry_put_many_recovers_in_waves() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::Writes);
        let retry = RetryStore::new(
            flaky,
            RetryPolicy { max_attempts: 10, initial_backoff_secs: 0.05, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        let keys: Vec<String> = (0..30).map(|i| format!("k{i}")).collect();
        let bodies: Vec<Vec<u8>> = (0..30).map(|i| format!("v{i}").into_bytes()).collect();
        let items: Vec<(&str, &[u8])> =
            keys.iter().zip(&bodies).map(|(k, d)| (k.as_str(), d.as_slice())).collect();
        let before = clock.now_secs();
        let results = retry.put_many(&items);
        assert!(results.iter().all(|r| r.is_ok()), "retries absorb 40% write faults");
        for (k, d) in keys.iter().zip(&bodies) {
            assert_eq!(&retry.get(k).unwrap(), d);
        }
        assert!(retry.retries() > 0);
        // One shared backoff per wave, same schedule as reads.
        let charged = clock.now_secs() - before;
        let waves = retry.m.waves.get();
        let schedule: f64 = (0..waves).map(|w| 0.05 * 2f64.powi(w as i32)).sum();
        assert!((charged - schedule).abs() < 1e-9, "one backoff per wave: {charged} vs {schedule}");
        assert!(retry.retries() > waves, "waves must be shared across keys");
    }

    #[test]
    fn retry_put_many_permanent_errors_resolve_immediately() {
        let clock = SimClock::new();
        let retry =
            RetryStore::new(Arc::new(MemoryStore::new()), RetryPolicy::default(), clock.clone())
                .unwrap();
        let results = retry.put_many(&[("fine", b"ok" as &[u8]), ("bad//key", b"x")]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(retry.retries(), 0, "invalid-key errors are permanent");
        assert_eq!(clock.now_secs(), 0.0);
    }

    #[test]
    fn breaker_shields_dead_endpoint_from_put_many() {
        let clock = SimClock::new();
        let dead = Arc::new(
            FlakyStore::new(Arc::new(MemoryStore::new()), 1.0, FailScope::Writes, 3).unwrap(),
        );
        let breaker = BreakerStore::new(
            dead.clone(),
            BreakerPolicy { failure_threshold: 2, ..BreakerPolicy::default() },
            clock,
        )
        .unwrap();
        let items: Vec<(&str, &[u8])> = vec![("a", b"1"), ("b", b"2"), ("c", b"3")];
        assert!(breaker.put_many(&items).iter().all(|r| r.is_err()));
        assert_eq!(breaker.state(), BreakerState::Open);
        let injected = dead.injected_failures();
        assert!(breaker.put_many(&items).iter().all(|r| r.is_err()));
        assert_eq!(dead.injected_failures(), injected, "open breaker shields inner");
        assert_eq!(breaker.fast_failures(), 3);
    }

    #[test]
    fn integrity_catches_write_corruption_and_retry_reuploads() {
        let obs = Obs::new(SimClock::new());
        let inner = Arc::new(MemoryStore::new());
        let plan =
            crate::fault::FaultPlan::new(31).with_corrupt_rate(0.3).with_scope(FailScope::Writes);
        let faulty = Arc::new(
            crate::fault::FaultStore::new(inner.clone(), plan, obs.clock().clone())
                .unwrap()
                .with_obs(&obs),
        );
        let verified = Arc::new(IntegrityStore::new(faulty).with_obs(&obs));
        let retry = RetryStore::new(
            verified,
            RetryPolicy { max_attempts: 8, initial_backoff_secs: 0.01, multiplier: 2.0 },
            obs.clock().clone(),
        )
        .unwrap()
        .with_obs(&obs);

        let keys: Vec<String> = (0..40).map(|i| format!("k{i}")).collect();
        let bodies: Vec<Vec<u8>> = (0..40).map(|i| format!("payload-{i}").into_bytes()).collect();
        let items: Vec<(&str, &[u8])> =
            keys.iter().zip(&bodies).map(|(k, d)| (k.as_str(), d.as_slice())).collect();
        let results = retry.put_many(&items);
        assert!(results.iter().all(|r| r.is_ok()));
        // Every stored object is bitwise the payload we sent: corrupted
        // uploads were caught by the checksum check and re-uploaded clean.
        for (k, d) in keys.iter().zip(&bodies) {
            assert_eq!(&inner.get(k).unwrap(), d);
        }
        let snap = obs.snapshot();
        assert!(snap.counter("fault.corrupted") > 0, "corruption was injected");
        assert!(snap.counter("integrity.rejected") > 0, "and caught on the write path");
        assert!(snap.counter("retry.retries") > 0, "and healed by re-upload");
    }

    #[test]
    fn integrity_single_put_detects_corruption() {
        let plan =
            crate::fault::FaultPlan::new(2).with_corrupt_rate(1.0).with_scope(FailScope::Writes);
        let faulty = Arc::new(
            crate::fault::FaultStore::new(Arc::new(MemoryStore::new()), plan, SimClock::new())
                .unwrap(),
        );
        let verified = IntegrityStore::new(faulty);
        let err = verified.put("k", b"payload").unwrap_err();
        assert!(matches!(err, NsdfError::Io(_)), "mismatch must be retryable I/O");
        assert_eq!(verified.rejected(), 1);
    }

    #[test]
    fn integrity_single_get_detects_corruption() {
        let inner = Arc::new(MemoryStore::new());
        inner.put("k", b"payload").unwrap();
        // corrupt_rate 1.0: every read is damaged.
        let plan = crate::fault::FaultPlan::new(2).with_corrupt_rate(1.0);
        let faulty = Arc::new(crate::fault::FaultStore::new(inner, plan, SimClock::new()).unwrap());
        let verified = IntegrityStore::new(faulty);
        let err = verified.get("k").unwrap_err();
        assert!(matches!(err, NsdfError::Io(_)), "mismatch must be retryable I/O");
        assert_eq!(verified.rejected(), 1);
        assert!(verified.head("k").is_ok(), "metadata itself is fine");
    }
}
