//! Failure injection and retry.
//!
//! Wide-area transfers fail; the NSDF testbed papers (refs \[2\], \[12\])
//! treat transient request failures as a fact of life. `FlakyStore`
//! injects deterministic, seed-driven failures into any inner store so
//! tests and benches can exercise error paths, and `RetryStore` layers
//! bounded exponential-backoff retries (charging backoff to the virtual
//! clock) on top — the pairing lets the workspace prove end-to-end that a
//! lossy substrate still yields correct datasets.

use crate::store::{ObjectMeta, ObjectStore};
use nsdf_util::obs::{Counter, Obs};
use nsdf_util::{secs_to_ns, splitmix64, NsdfError, Result, SimClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which operations may be failed by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailScope {
    /// Only reads (get/get_range/head/list).
    Reads,
    /// Only writes (put/delete).
    Writes,
    /// Everything.
    All,
}

/// A store that fails a deterministic fraction of operations.
pub struct FlakyStore {
    inner: Arc<dyn ObjectStore>,
    /// Failure probability in [0, 1].
    fail_rate: f64,
    scope: FailScope,
    seed: u64,
    op_counter: AtomicU64,
    injected: Counter,
}

impl FlakyStore {
    /// Fail `fail_rate` of in-scope operations with an I/O error.
    pub fn new(
        inner: Arc<dyn ObjectStore>,
        fail_rate: f64,
        scope: FailScope,
        seed: u64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&fail_rate) {
            return Err(NsdfError::invalid("fail rate must be in [0, 1]"));
        }
        Ok(FlakyStore {
            inner,
            fail_rate,
            scope,
            seed,
            op_counter: AtomicU64::new(0),
            injected: Obs::default().scoped("flaky").counter("injected"),
        })
    }

    /// Report the injected-failure count into `obs` (scope `…flaky`).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.injected = obs.scoped("flaky").counter("injected");
        self
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.get()
    }

    fn maybe_fail(&self, is_read: bool, what: &str) -> Result<()> {
        let in_scope = match self.scope {
            FailScope::Reads => is_read,
            FailScope::Writes => !is_read,
            FailScope::All => true,
        };
        if !in_scope {
            return Ok(());
        }
        let op = self.op_counter.fetch_add(1, Ordering::Relaxed);
        let u = splitmix64(self.seed ^ op) as f64 / u64::MAX as f64;
        if u < self.fail_rate {
            self.injected.inc();
            return Err(NsdfError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("injected transient failure during {what}"),
            )));
        }
        Ok(())
    }
}

impl ObjectStore for FlakyStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        self.maybe_fail(false, "put")?;
        self.inner.put(key, data)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.maybe_fail(true, "get")?;
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.maybe_fail(true, "get_range")?;
        self.inner.get_range(key, offset, len)
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        // One injection draw per key — a batch of n reads must face the
        // same loss odds as n single reads — then the survivors still go
        // to the inner store as one batch so its amortization is kept.
        let mut out: Vec<Option<Result<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        let mut pass_idx = Vec::with_capacity(keys.len());
        let mut pass_keys = Vec::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            match self.maybe_fail(true, "get_many") {
                Ok(()) => {
                    pass_idx.push(i);
                    pass_keys.push(*k);
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        if !pass_keys.is_empty() {
            for (i, r) in pass_idx.into_iter().zip(self.inner.get_many(&pass_keys)) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.maybe_fail(true, "head")?;
        self.inner.head(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.maybe_fail(true, "list")?;
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.maybe_fail(false, "delete")?;
        self.inner.delete(key)
    }

    fn describe(&self) -> String {
        format!("{} with {:.0}% injected failures", self.inner.describe(), self.fail_rate * 100.0)
    }
}

/// Retry policy for [`RetryStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (>= 1), including the first.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds.
    pub initial_backoff_secs: f64,
    /// Backoff multiplier per subsequent attempt.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    /// Three attempts, 100 ms initial backoff, doubling.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.1, multiplier: 2.0 }
    }
}

/// A store that retries transient failures with exponential backoff.
///
/// Only I/O-class errors are retried; `NotFound`/`InvalidArg`/`Corrupt`
/// are permanent and propagate immediately. Backoff sleeps advance the
/// virtual clock, so retries show up in end-to-end virtual timings.
pub struct RetryStore {
    inner: Arc<dyn ObjectStore>,
    policy: RetryPolicy,
    clock: SimClock,
    m: RetryMetrics,
}

/// Registry handles for one `RetryStore`, under the `retry` scope.
///
/// `backoff_vns` mirrors every backoff clock charge in integer nanoseconds
/// (via [`secs_to_ns`]); `waves` counts backoff episodes, so "one backoff
/// charge per wave" is directly assertable: `backoff_vns` grows by exactly
/// one policy step each time `waves` ticks.
struct RetryMetrics {
    retries: Counter,
    waves: Counter,
    backoff_vns: Counter,
}

impl RetryMetrics {
    fn new(obs: &Obs) -> Self {
        let obs = obs.scoped("retry");
        RetryMetrics {
            retries: obs.counter("retries"),
            waves: obs.counter("waves"),
            backoff_vns: obs.counter("backoff_vns"),
        }
    }
}

impl RetryStore {
    /// Wrap `inner` with `policy`, charging backoff to `clock`.
    pub fn new(inner: Arc<dyn ObjectStore>, policy: RetryPolicy, clock: SimClock) -> Result<Self> {
        if policy.max_attempts == 0 {
            return Err(NsdfError::invalid("retry policy needs at least one attempt"));
        }
        Ok(RetryStore { inner, policy, clock, m: RetryMetrics::new(&Obs::default()) })
    }

    /// Report retry accounting into `obs` (scope `…retry`).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = RetryMetrics::new(obs);
        self
    }

    /// Total retry attempts performed (excludes first attempts).
    pub fn retries(&self) -> u64 {
        self.m.retries.get()
    }

    /// Charge one backoff episode (a "wave": one shared sleep covering
    /// `keys_retried` keys) and return the next backoff value.
    fn charge_backoff(&self, backoff: f64, keys_retried: u64) -> f64 {
        self.m.retries.add(keys_retried);
        self.m.waves.inc();
        self.m.backoff_vns.add(secs_to_ns(backoff));
        self.clock.advance_secs(backoff);
        backoff * self.policy.multiplier
    }

    fn with_retries<T>(&self, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let mut backoff = self.policy.initial_backoff_secs;
        let mut attempt = 1;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(NsdfError::Io(e)) if attempt < self.policy.max_attempts => {
                    let _ = e; // transient: retry after backoff
                    backoff = self.charge_backoff(backoff, 1);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl ObjectStore for RetryStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        self.with_retries(|| self.inner.put(key, data))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.with_retries(|| self.inner.get(key))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_retries(|| self.inner.get_range(key, offset, len))
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        // Wave-based retry: re-batch all transiently failed keys and retry
        // them together, charging one shared backoff per wave (concurrent
        // retries back off in parallel, not in sequence). Permanent errors
        // resolve immediately; the retry counter still counts per key so
        // it agrees with the single-get accounting.
        let mut out: Vec<Option<Result<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        let mut backoff = self.policy.initial_backoff_secs;
        let mut attempt = 1;
        loop {
            let wave: Vec<&str> = pending.iter().map(|&i| keys[i]).collect();
            let results = self.inner.get_many(&wave);
            let mut next = Vec::new();
            for (&i, r) in pending.iter().zip(results) {
                match r {
                    Err(NsdfError::Io(_)) if attempt < self.policy.max_attempts => next.push(i),
                    r => out[i] = Some(r),
                }
            }
            if next.is_empty() {
                break;
            }
            backoff = self.charge_backoff(backoff, next.len() as u64);
            attempt += 1;
            pending = next;
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.with_retries(|| self.inner.head(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.with_retries(|| self.inner.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.with_retries(|| self.inner.delete(key))
    }

    fn describe(&self) -> String {
        format!("{} with {}-attempt retry", self.inner.describe(), self.policy.max_attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;

    fn flaky(rate: f64, scope: FailScope) -> Arc<FlakyStore> {
        Arc::new(FlakyStore::new(Arc::new(MemoryStore::new()), rate, scope, 7).unwrap())
    }

    #[test]
    fn zero_rate_never_fails() {
        let s = flaky(0.0, FailScope::All);
        for i in 0..100 {
            s.put(&format!("k{i}"), b"v").unwrap();
            s.get(&format!("k{i}")).unwrap();
        }
        assert_eq!(s.injected_failures(), 0);
    }

    #[test]
    fn full_rate_always_fails() {
        let s = flaky(1.0, FailScope::All);
        assert!(s.put("k", b"v").is_err());
        assert!(s.get("k").is_err());
        assert_eq!(s.injected_failures(), 2);
    }

    #[test]
    fn scope_limits_injection() {
        let s = flaky(1.0, FailScope::Reads);
        s.put("k", b"v").unwrap(); // writes unaffected
        assert!(s.get("k").is_err());
        let s = flaky(1.0, FailScope::Writes);
        assert!(s.put("k", b"v").is_err());
    }

    #[test]
    fn injection_is_deterministic() {
        let run = || {
            let s = flaky(0.3, FailScope::All);
            (0..50).map(|i| s.put(&format!("k{i}"), b"v").is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let s = flaky(0.3, FailScope::All);
        for i in 0..50 {
            let _ = s.put(&format!("k{i}"), b"v");
        }
        let injected = s.injected_failures();
        assert!((5..30).contains(&injected), "injected {injected} of 50 at 30%");
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::All);
        let retry = RetryStore::new(
            flaky.clone(),
            RetryPolicy { max_attempts: 10, initial_backoff_secs: 0.05, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        for i in 0..50 {
            retry.put(&format!("k{i}"), format!("v{i}").as_bytes()).unwrap();
        }
        for i in 0..50 {
            assert_eq!(retry.get(&format!("k{i}")).unwrap(), format!("v{i}").as_bytes());
        }
        assert!(retry.retries() > 0);
        assert!(clock.now_secs() > 0.0, "backoff must charge the clock");
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let clock = SimClock::new();
        let always_fail = flaky(1.0, FailScope::All);
        let retry = RetryStore::new(
            always_fail,
            RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.1, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        assert!(retry.get("k").is_err());
        assert_eq!(retry.retries(), 2); // 3 attempts = 2 retries
                                        // Backoff 0.1 + 0.2 charged.
        assert!((clock.now_secs() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn permanent_errors_not_retried() {
        let clock = SimClock::new();
        let retry =
            RetryStore::new(Arc::new(MemoryStore::new()), RetryPolicy::default(), clock.clone())
                .unwrap();
        assert!(retry.get("missing").unwrap_err().is_not_found());
        assert_eq!(retry.retries(), 0);
        assert_eq!(clock.now_secs(), 0.0);
    }

    #[test]
    fn flaky_get_many_draws_per_key() {
        // A batch must consume one injection decision per key, exactly like
        // n single gets with the same seed would.
        let keys: Vec<String> = (0..40).map(|i| format!("k{i}")).collect();
        let singles = {
            let s = flaky(0.3, FailScope::Reads);
            for k in &keys {
                s.put(k, b"v").unwrap();
            }
            keys.iter().map(|k| s.get(k).is_ok()).collect::<Vec<_>>()
        };
        let batched = {
            let s = flaky(0.3, FailScope::Reads);
            for k in &keys {
                s.put(k, b"v").unwrap();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            s.get_many(&refs).iter().map(|r| r.is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(singles, batched);
        assert!(singles.iter().any(|ok| !ok), "rate 0.3 over 40 keys injects something");
        assert!(singles.iter().any(|&ok| ok), "rate 0.3 over 40 keys passes something");
    }

    #[test]
    fn retry_get_many_recovers_in_waves() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::Reads);
        let retry = RetryStore::new(
            flaky.clone(),
            RetryPolicy { max_attempts: 10, initial_backoff_secs: 0.05, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        let keys: Vec<String> = (0..30).map(|i| format!("k{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            retry.put(k, format!("v{i}").as_bytes()).unwrap();
        }
        let before = clock.now_secs();
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let results = retry.get_many(&refs);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), format!("v{i}").as_bytes(), "key {i}");
        }
        assert!(retry.retries() > 0, "rate 0.4 over 30 keys must retry");
        // Waves share one backoff each: total backoff is far below what
        // per-key sequential retries (0.05s each, doubling) would charge.
        let charged = clock.now_secs() - before;
        assert!(charged > 0.0);
        assert!(charged < 0.05 * retry.retries() as f64, "backoff charged per wave, not per key");
    }

    #[test]
    fn retry_get_many_mixes_permanent_and_transient() {
        let clock = SimClock::new();
        let flaky = flaky(0.4, FailScope::Reads);
        let retry = RetryStore::new(flaky, RetryPolicy::default(), clock.clone()).unwrap();
        retry.put("present", b"yes").unwrap();
        // "absent" resolves as NotFound without burning retry attempts even
        // while its wave-mates retry transient failures.
        let results = retry.get_many(&["present", "absent"]);
        assert_eq!(results[0].as_ref().unwrap(), b"yes");
        assert!(results[1].as_ref().unwrap_err().is_not_found());
    }

    #[test]
    fn retry_get_many_gives_up_after_max_attempts() {
        let clock = SimClock::new();
        let always_fail = flaky(1.0, FailScope::All);
        let retry = RetryStore::new(
            always_fail,
            RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.1, multiplier: 2.0 },
            clock.clone(),
        )
        .unwrap();
        let results = retry.get_many(&["a", "b"]);
        assert!(results.iter().all(|r| matches!(r, Err(NsdfError::Io(_)))));
        // Two keys x 2 retry waves; backoff charged once per wave.
        assert_eq!(retry.retries(), 4);
        assert!((clock.now_secs() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn retry_get_many_charges_one_backoff_per_wave() {
        // Satellite fault-path test: drive get_many through a flaky inner
        // and check, via the registry, that each retry wave charges exactly
        // one policy backoff step — and that the whole episode (per-key
        // outcomes, error text, clock charge) is deterministic.
        let policy = RetryPolicy { max_attempts: 4, initial_backoff_secs: 0.05, multiplier: 2.0 };
        let run = || {
            let obs = Obs::new(SimClock::new());
            let flaky = Arc::new(
                FlakyStore::new(Arc::new(MemoryStore::new()), 0.45, FailScope::Reads, 11)
                    .unwrap()
                    .with_obs(&obs),
            );
            let retry = RetryStore::new(flaky, policy, obs.clock().clone()).unwrap().with_obs(&obs);
            let keys: Vec<String> = (0..24).map(|i| format!("k{i}")).collect();
            for (i, k) in keys.iter().enumerate() {
                retry.put(k, format!("v{i}").as_bytes()).unwrap();
            }
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            let outcomes: Vec<String> = retry
                .get_many(&refs)
                .into_iter()
                .map(|r| match r {
                    Ok(v) => String::from_utf8(v).unwrap(),
                    Err(e) => format!("err: {e}"),
                })
                .collect();
            (obs.snapshot(), outcomes, obs.clock().now_ns())
        };

        let (snap, outcomes, clock_ns) = run();
        let waves = snap.counter("retry.waves");
        assert!(waves >= 1, "rate 0.45 over 24 keys must need at least one retry wave");
        assert!(waves <= (policy.max_attempts - 1) as u64);
        // One backoff charge per wave, stepping through the policy schedule.
        let expected_backoff: u64 = (0..waves)
            .map(|w| secs_to_ns(policy.initial_backoff_secs * policy.multiplier.powi(w as i32)))
            .sum();
        assert_eq!(snap.counter("retry.backoff_vns"), expected_backoff);
        assert_eq!(clock_ns, expected_backoff, "clock charge == sum of per-wave backoffs");
        assert!(snap.counter("retry.retries") >= waves, "each wave retries >= 1 key");
        assert!(snap.counter("flaky.injected") >= snap.counter("retry.retries"));

        // Deterministic error propagation: an identically-seeded run gives
        // identical per-key outcomes (including error text) and metrics.
        let (snap2, outcomes2, clock_ns2) = run();
        assert_eq!(outcomes, outcomes2);
        assert_eq!(snap.to_json(), snap2.to_json());
        assert_eq!(clock_ns, clock_ns2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let inner: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        assert!(FlakyStore::new(inner.clone(), 1.5, FailScope::All, 1).is_err());
        assert!(RetryStore::new(
            inner,
            RetryPolicy { max_attempts: 0, initial_backoff_secs: 0.1, multiplier: 2.0 },
            SimClock::new()
        )
        .is_err());
    }
}
