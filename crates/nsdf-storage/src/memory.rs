//! In-memory object store — the default substrate for tests, simulations,
//! and as the backing target behind the WAN simulator.

use crate::store::{slice_range, validate_key, ObjectMeta, ObjectStore};
use nsdf_util::{fnv1a64, NsdfError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe in-memory object store with `BTreeMap` key ordering (so
/// `list` is naturally sorted).
#[derive(Debug, Default)]
pub struct MemoryStore {
    objects: RwLock<BTreeMap<String, StoredObject>>,
    stamp: AtomicU64,
}

#[derive(Debug, Clone)]
struct StoredObject {
    data: Vec<u8>,
    meta: ObjectMeta,
}

impl MemoryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Sum of payload sizes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|o| o.meta.size).sum()
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        validate_key(key)?;
        let meta = ObjectMeta {
            key: key.to_string(),
            size: data.len() as u64,
            checksum: fnv1a64(data),
            modified: self.stamp.fetch_add(1, Ordering::Relaxed),
        };
        self.objects
            .write()
            .insert(key.to_string(), StoredObject { data: data.to_vec(), meta: meta.clone() });
        Ok(meta)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.objects
            .read()
            .get(key)
            .map(|o| o.data.clone())
            .ok_or_else(|| NsdfError::not_found(format!("object {key:?}")))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let guard = self.objects.read();
        let o = guard.get(key).ok_or_else(|| NsdfError::not_found(format!("object {key:?}")))?;
        slice_range(&o.data, offset, len, key)
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.objects
            .read()
            .get(key)
            .map(|o| o.meta.clone())
            .ok_or_else(|| NsdfError::not_found(format!("object {key:?}")))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, o)| o.meta.clone())
            .collect())
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        // Reads share the RwLock, so a parallel map turns the batch into
        // genuinely concurrent lookups (and concurrent payload copies,
        // which dominate for block-sized objects).
        nsdf_util::par::par_map(keys, nsdf_util::par::num_threads(), |k| self.get(k))
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        // Each put takes the write lock only briefly; the parallel map
        // overlaps validation, checksumming, and payload copies, which
        // dominate for block-sized objects.
        nsdf_util::par::par_map(items, nsdf_util::par::num_threads(), |(k, d)| self.put(k, d))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.objects
            .write()
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| NsdfError::not_found(format!("object {key:?}")))
    }

    fn describe(&self) -> String {
        "in-memory object store".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_head_roundtrip() {
        let s = MemoryStore::new();
        let meta = s.put("a/b", b"hello").unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.checksum, fnv1a64(b"hello"));
        assert_eq!(s.get("a/b").unwrap(), b"hello");
        assert_eq!(s.head("a/b").unwrap(), meta);
        assert!(s.exists("a/b").unwrap());
        assert!(!s.exists("a/c").unwrap());
    }

    #[test]
    fn overwrite_bumps_stamp() {
        let s = MemoryStore::new();
        let m1 = s.put("k", b"one").unwrap();
        let m2 = s.put("k", b"two").unwrap();
        assert!(m2.modified > m1.modified);
        assert_eq!(s.get("k").unwrap(), b"two");
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn missing_objects_error() {
        let s = MemoryStore::new();
        assert!(s.get("nope").unwrap_err().is_not_found());
        assert!(s.head("nope").unwrap_err().is_not_found());
        assert!(s.delete("nope").unwrap_err().is_not_found());
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let s = MemoryStore::new();
        for k in ["b/2", "a/1", "a/2", "a/10", "c"] {
            s.put(k, b"x").unwrap();
        }
        let keys: Vec<String> = s.list("a/").unwrap().into_iter().map(|m| m.key).collect();
        assert_eq!(keys, vec!["a/1", "a/10", "a/2"]);
        assert_eq!(s.list("").unwrap().len(), 5);
        assert!(s.list("zzz").unwrap().is_empty());
    }

    #[test]
    fn ranged_get() {
        let s = MemoryStore::new();
        s.put("k", b"0123456789").unwrap();
        assert_eq!(s.get_range("k", 3, 4).unwrap(), b"3456");
        assert!(s.get_range("k", 9, 5).is_err());
        assert!(s.get_range("missing", 0, 1).unwrap_err().is_not_found());
    }

    #[test]
    fn delete_removes() {
        let s = MemoryStore::new();
        s.put("k", b"x").unwrap();
        s.delete("k").unwrap();
        assert!(!s.exists("k").unwrap());
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn rejects_invalid_keys() {
        let s = MemoryStore::new();
        assert!(s.put("/bad", b"x").is_err());
    }

    #[test]
    fn put_many_matches_sequential_puts() {
        let s = MemoryStore::new();
        let keys: Vec<String> = (0..12).map(|i| format!("batch/{i}")).collect();
        let payloads: Vec<Vec<u8>> = (0..12).map(|i| vec![i as u8; 100 + i]).collect();
        let items: Vec<(&str, &[u8])> =
            keys.iter().zip(&payloads).map(|(k, d)| (k.as_str(), d.as_slice())).collect();
        let metas = s.put_many(&items);
        for ((k, d), m) in items.iter().zip(&metas) {
            let m = m.as_ref().unwrap();
            assert_eq!(m.key, *k);
            assert_eq!(m.checksum, fnv1a64(d));
            assert_eq!(s.get(k).unwrap(), *d);
        }
        let bad = s.put_many(&[("ok/key", b"x" as &[u8]), ("/bad", b"y")]);
        assert!(bad[0].is_ok());
        assert!(bad[1].is_err(), "a failed key never aborts the batch");
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let s = std::sync::Arc::new(MemoryStore::new());
        crossbeam::scope(|scope| {
            for t in 0..8 {
                let s = s.clone();
                scope.spawn(move |_| {
                    for i in 0..50 {
                        let key = format!("t{t}/obj{i}");
                        s.put(&key, format!("payload-{t}-{i}").as_bytes()).unwrap();
                        assert!(s.get(&key).is_ok());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(s.object_count(), 400);
    }
}
