//! # nsdf-storage
//!
//! Object storage for the NSDF stack: the trait everything above speaks,
//! concrete backends, a deterministic WAN simulator standing in for the
//! public (Dataverse-class) and private (Seal-class) clouds of the
//! tutorial, and the LRU cache layer OpenVisus-style streaming relies on.
//!
//! * [`store`] — the [`ObjectStore`] trait, key validation, ranged reads;
//! * [`memory`] — in-memory backend;
//! * [`local`] — filesystem backend;
//! * [`wan`] — [`wan::CloudStore`] WAN wrapper with [`wan::NetworkProfile`]s;
//! * [`cache`] — [`cache::CachedStore`] byte-budgeted LRU cache;
//! * [`fault`] — scripted, seeded chaos: [`fault::FaultPlan`] windows
//!   (outages, latency spikes, slow reads, error bursts, corruption)
//!   executed by [`fault::FaultStore`] on the virtual clock;
//! * [`reliability`] — the resilience stack: failure injection, retries
//!   with hedged backup waves, a per-endpoint circuit breaker, and
//!   checksum verification;
//! * [`sched`] — shared-WAN admission control: [`sched::WanScheduler`]
//!   priority tiers, per-tenant token buckets, prefetch shedding, and the
//!   per-tenant [`sched::SchedStore`] accounting handle;
//! * [`tiered`] — persistent content-addressed disk tier
//!   ([`tiered::DiskTier`]) under the RAM cache ([`tiered::TieredStore`]),
//!   with the [`tiered::FrequencySketch`] backing TinyLFU admission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod local;
pub mod memory;
pub mod reliability;
pub mod sched;
pub mod store;
pub mod tiered;
pub mod wan;

pub use cache::{AdmissionPolicy, CacheStats, CachedStore};
pub use fault::{FaultKind, FaultPlan, FaultStore, FaultWindow};
pub use local::LocalStore;
pub use memory::MemoryStore;
pub use reliability::{
    BreakerPolicy, BreakerState, BreakerStore, FailScope, FlakyStore, HedgePolicy, IntegrityStore,
    RetryPolicy, RetryStore,
};
pub use sched::{Admission, DeclaredWave, SchedPolicy, SchedStore, WanScheduler};
pub use store::{validate_key, ObjectMeta, ObjectStore, Priority};
pub use tiered::{
    hash_to_path, path_to_hash, DiskProfile, DiskStats, DiskTier, FrequencySketch, TieredConfig,
    TieredStore,
};
pub use wan::{CloudStore, NetworkProfile, TransferLog};
