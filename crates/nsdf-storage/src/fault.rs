//! Deterministic, scripted fault injection: the chaos model for the
//! simulated NSDF storage fabric.
//!
//! Remote community storage — the public Dataverse commons, the private
//! Seal cloud — fails in structured ways: whole-endpoint outages, latency
//! spikes, slow reads under congestion, transient per-request errors, and
//! the occasional corrupted payload. [`FaultPlan`] scripts all of these
//! against the shared virtual [`SimClock`] timeline, and [`FaultStore`]
//! executes the plan over any inner [`ObjectStore`].
//!
//! Two determinism rules make chaos runs byte-for-byte reproducible:
//!
//! 1. every per-key decision (fail? corrupt?) is a **pure function of
//!    `(seed, key, attempt)`** — the attempt counter is tracked per key, so
//!    batch composition and draw order cannot change which keys fail
//!    (unlike the retired global-counter `FlakyStore` draws);
//! 2. scripted windows (outages, spikes) trigger on **virtual time**, so
//!    identically-seeded runs see identical fault sequences regardless of
//!    wall-clock scheduling.

use crate::store::{ObjectMeta, ObjectStore, Priority};
use nsdf_util::obs::{Counter, Obs};
use nsdf_util::{fnv1a64, secs_to_ns, splitmix64, NsdfError, Result, SimClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::reliability::FailScope;

/// Salt separating the failure draw stream from the corruption streams.
const SALT_FAIL: u64 = 0xFA11_FA11_FA11_0001;
/// Salt for the corrupt-or-not draw.
const SALT_CORRUPT: u64 = 0xC0DE_C0DE_C0DE_0002;
/// Salt for picking which byte of a corrupted payload to damage.
const SALT_SITE: u64 = 0xB17E_B17E_B17E_0003;

/// One scripted disturbance over a virtual-time window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Window start, virtual seconds (inclusive).
    pub start_secs: f64,
    /// Window end, virtual seconds (exclusive).
    pub end_secs: f64,
    /// What happens inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// True when virtual time `now` falls inside this window.
    pub fn contains(&self, now_secs: f64) -> bool {
        now_secs >= self.start_secs && now_secs < self.end_secs
    }
}

/// The disturbance a [`FaultWindow`] applies.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Total endpoint outage: every in-scope operation fails.
    Outage,
    /// Each in-scope operation (or batch) charges `extra_secs` of extra
    /// virtual latency before reaching the endpoint.
    LatencySpike {
        /// Extra virtual seconds charged per operation/batch.
        extra_secs: f64,
    },
    /// Reads take `factor` times their normal virtual duration (congestion
    /// on the return path). Applies to the whole operation or batch.
    SlowReads {
        /// Multiplier on the inner operation's virtual cost (>= 1).
        factor: f64,
    },
    /// Elevated per-key transient failure probability inside the window.
    ErrorBurst {
        /// Failure probability in `[0, 1]` while the burst lasts.
        rate: f64,
    },
}

/// A seeded, scripted fault model: background per-`(key, attempt)` failure
/// and corruption rates plus any number of virtual-time windows.
///
/// ```
/// use nsdf_storage::fault::FaultPlan;
/// let plan = FaultPlan::new(42)
///     .with_fault_rate(0.05)      // 5 % of requests fail transiently
///     .with_corrupt_rate(0.01)    // 1 % of payloads arrive damaged
///     .outage(10.0, 12.5)         // endpoint dark for 2.5 virtual secs
///     .latency_spike(20.0, 25.0, 0.25)
///     .slow_reads(30.0, 40.0, 3.0)
///     .error_burst(50.0, 55.0, 0.5);
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed for every stochastic draw in the plan.
    pub seed: u64,
    /// Which operation classes the plan may disturb.
    pub scope: FailScope,
    /// Background transient failure probability per `(key, attempt)`.
    pub fault_rate: f64,
    /// Payload corruption probability per `(key, attempt)`: fetched
    /// payloads arrive damaged (reads), stored payloads land damaged
    /// (writes) — both within the plan's scope, both caught by checksum
    /// verification in the integrity layer.
    pub corrupt_rate: f64,
    /// Scripted windows, applied on the virtual clock.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A clean plan (no faults at all) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            scope: FailScope::All,
            fault_rate: 0.0,
            corrupt_rate: 0.0,
            windows: Vec::new(),
        }
    }

    /// Restrict the plan to reads or writes.
    pub fn with_scope(mut self, scope: FailScope) -> Self {
        self.scope = scope;
        self
    }

    /// Set the background transient failure rate.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Set the payload corruption rate (reads and writes, per scope).
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Script a total outage over `[start, end)` virtual seconds.
    pub fn outage(mut self, start_secs: f64, end_secs: f64) -> Self {
        self.windows.push(FaultWindow { start_secs, end_secs, kind: FaultKind::Outage });
        self
    }

    /// Script a latency spike: `extra_secs` charged per op in the window.
    pub fn latency_spike(mut self, start_secs: f64, end_secs: f64, extra_secs: f64) -> Self {
        self.windows.push(FaultWindow {
            start_secs,
            end_secs,
            kind: FaultKind::LatencySpike { extra_secs },
        });
        self
    }

    /// Script a slow-read window: reads cost `factor`× their virtual time.
    pub fn slow_reads(mut self, start_secs: f64, end_secs: f64, factor: f64) -> Self {
        self.windows.push(FaultWindow {
            start_secs,
            end_secs,
            kind: FaultKind::SlowReads { factor },
        });
        self
    }

    /// Script an error burst: failure rate `rate` inside the window.
    pub fn error_burst(mut self, start_secs: f64, end_secs: f64, rate: f64) -> Self {
        self.windows.push(FaultWindow {
            start_secs,
            end_secs,
            kind: FaultKind::ErrorBurst { rate },
        });
        self
    }

    /// Check every probability and window for validity.
    pub fn validate(&self) -> Result<()> {
        let unit = |v: f64, what: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(NsdfError::invalid(format!("{what} must be in [0, 1], got {v}")))
            }
        };
        unit(self.fault_rate, "fault rate")?;
        unit(self.corrupt_rate, "corrupt rate")?;
        for w in &self.windows {
            if !(w.start_secs >= 0.0 && w.end_secs > w.start_secs) {
                return Err(NsdfError::invalid(format!(
                    "fault window [{}, {}) is not a forward interval",
                    w.start_secs, w.end_secs
                )));
            }
            match w.kind {
                FaultKind::ErrorBurst { rate } => unit(rate, "error burst rate")?,
                FaultKind::LatencySpike { extra_secs } if extra_secs < 0.0 => {
                    return Err(NsdfError::invalid("latency spike must be non-negative"));
                }
                FaultKind::SlowReads { factor } if factor < 1.0 => {
                    return Err(NsdfError::invalid("slow-read factor must be >= 1"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The failure rate in force at virtual time `now` (background rate,
    /// raised by any active error burst).
    pub fn rate_at(&self, now_secs: f64) -> f64 {
        let mut rate = self.fault_rate;
        for w in &self.windows {
            if let FaultKind::ErrorBurst { rate: r } = w.kind {
                if w.contains(now_secs) {
                    rate = rate.max(r);
                }
            }
        }
        rate
    }

    /// True when an outage window covers virtual time `now`.
    pub fn in_outage(&self, now_secs: f64) -> bool {
        self.windows.iter().any(|w| matches!(w.kind, FaultKind::Outage) && w.contains(now_secs))
    }

    /// Sum of active latency-spike charges at virtual time `now`.
    pub fn spike_at(&self, now_secs: f64) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(now_secs))
            .filter_map(|w| match w.kind {
                FaultKind::LatencySpike { extra_secs } => Some(extra_secs),
                _ => None,
            })
            .sum()
    }

    /// Combined slow-read factor at virtual time `now` (1.0 = no slowdown).
    pub fn slow_factor_at(&self, now_secs: f64) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(now_secs))
            .filter_map(|w| match w.kind {
                FaultKind::SlowReads { factor } => Some(factor),
                _ => None,
            })
            .fold(1.0, f64::max)
    }
}

/// Registry handles for one `FaultStore`, under a configurable scope
/// (`fault` by default, `flaky` for the compatibility wrapper).
struct FaultMetrics {
    injected: Counter,
    outage_failures: Counter,
    corrupted: Counter,
    delay_vns: Counter,
    slow_vns: Counter,
}

impl FaultMetrics {
    fn new(obs: &Obs, label: &str) -> Self {
        let obs = obs.scoped(label);
        FaultMetrics {
            injected: obs.counter("injected"),
            outage_failures: obs.counter("outage_failures"),
            corrupted: obs.counter("corrupted"),
            delay_vns: obs.counter("delay_vns"),
            slow_vns: obs.counter("slow_vns"),
        }
    }
}

/// An [`ObjectStore`] that executes a [`FaultPlan`] over its inner store.
///
/// Layer it directly above the WAN simulator so scripted latency charges
/// and the WAN's own costs share one [`SimClock`]:
/// `RetryStore(IntegrityStore(FaultStore(CloudStore(MemoryStore))))`.
pub struct FaultStore {
    inner: Arc<dyn ObjectStore>,
    plan: FaultPlan,
    clock: SimClock,
    /// Per-key attempt counters: the `attempt` input of every draw.
    attempts: Mutex<HashMap<String, u64>>,
    label: &'static str,
    m: FaultMetrics,
}

impl FaultStore {
    /// Wrap `inner`, executing `plan` against `clock`.
    pub fn new(inner: Arc<dyn ObjectStore>, plan: FaultPlan, clock: SimClock) -> Result<Self> {
        Self::with_label(inner, plan, clock, "fault")
    }

    /// As [`FaultStore::new`] but reporting metrics under `label` (used by
    /// the `FlakyStore` compatibility wrapper, which reports as `flaky`).
    pub(crate) fn with_label(
        inner: Arc<dyn ObjectStore>,
        plan: FaultPlan,
        clock: SimClock,
        label: &'static str,
    ) -> Result<Self> {
        plan.validate()?;
        Ok(FaultStore {
            inner,
            plan,
            clock,
            attempts: Mutex::new(HashMap::new()),
            label,
            m: FaultMetrics::new(&Obs::default(), label),
        })
    }

    /// Report injection accounting into `obs` (scope `…fault`, or the
    /// label given at construction).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = FaultMetrics::new(obs, self.label);
        self
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The virtual clock windows trigger on.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Transient failures injected so far (background + bursts + outages).
    pub fn injected_failures(&self) -> u64 {
        self.m.injected.get() + self.m.outage_failures.get()
    }

    /// Payloads corrupted so far.
    pub fn corrupted_payloads(&self) -> u64 {
        self.m.corrupted.get()
    }

    /// The wrapped store's own description (for wrappers that present
    /// their own layer description, like `FlakyStore`).
    pub(crate) fn inner_describe(&self) -> String {
        self.inner.describe()
    }

    /// Attempts consumed for `key` so far (draw-stream position).
    pub fn attempts_for(&self, key: &str) -> u64 {
        self.attempts.lock().get(key).copied().unwrap_or(0)
    }

    fn in_scope(&self, is_read: bool) -> bool {
        match self.plan.scope {
            FailScope::Reads => is_read,
            FailScope::Writes => !is_read,
            FailScope::All => true,
        }
    }

    /// Uniform draw in `[0, 1)`, pure in `(seed, salt, key, attempt)`.
    fn draw(&self, salt: u64, key: &str, attempt: u64) -> f64 {
        let mixed = splitmix64(self.plan.seed ^ salt)
            ^ fnv1a64(key.as_bytes())
            ^ splitmix64(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        splitmix64(mixed) as f64 / u64::MAX as f64
    }

    /// Consume the next attempt number for `key`.
    fn next_attempt(&self, key: &str) -> u64 {
        let mut attempts = self.attempts.lock();
        let slot = attempts.entry(key.to_string()).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    }

    /// Charge any latency spike active right now (once per op or batch).
    fn charge_spike(&self, now_secs: f64) {
        let extra = self.plan.spike_at(now_secs);
        if extra > 0.0 {
            self.clock.advance_secs(extra);
            self.m.delay_vns.add(secs_to_ns(extra));
        }
    }

    /// Charge the slow-read surcharge: `(factor - 1) ×` the virtual cost
    /// the inner operation accrued. The factor is sampled at entry time so
    /// the decision is deterministic even when the op itself moves the
    /// clock past the window edge.
    fn charge_slowdown(&self, factor: f64, entry_ns: u64) {
        if factor > 1.0 {
            let inner_ns = self.clock.now_ns().saturating_sub(entry_ns);
            let extra_ns = ((factor - 1.0) * inner_ns as f64).round() as u64;
            if extra_ns > 0 {
                self.clock.advance_ns(extra_ns);
                self.m.slow_vns.add(extra_ns);
            }
        }
    }

    fn outage_error(&self, what: &str) -> NsdfError {
        self.m.outage_failures.inc();
        NsdfError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            format!("endpoint outage during {what}"),
        ))
    }

    fn injected_error(&self, what: &str, key: &str) -> NsdfError {
        self.m.injected.inc();
        NsdfError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            format!("injected transient failure during {what} of {key:?}"),
        ))
    }

    /// Per-key admission: consume an attempt and decide failure. Returns
    /// the attempt number consumed (for the corruption draw).
    fn admit(&self, key: &str, rate: f64, what: &str) -> Result<u64> {
        let attempt = self.next_attempt(key);
        if rate > 0.0 && self.draw(SALT_FAIL, key, attempt) < rate {
            return Err(self.injected_error(what, key));
        }
        Ok(attempt)
    }

    /// Deterministically damage one byte of `data` when the corruption
    /// draw for `(key, attempt)` fires. Empty payloads are left alone.
    /// Callers gate on scope; the draw itself is the same pure
    /// `(seed, key, attempt)` stream for reads and writes.
    fn maybe_corrupt(&self, key: &str, attempt: u64, data: &mut [u8]) {
        if self.plan.corrupt_rate <= 0.0 || data.is_empty() {
            return;
        }
        if self.draw(SALT_CORRUPT, key, attempt) < self.plan.corrupt_rate {
            let mixed = splitmix64(self.plan.seed ^ SALT_SITE)
                ^ fnv1a64(key.as_bytes())
                ^ splitmix64(attempt);
            let site = (splitmix64(mixed) % data.len() as u64) as usize;
            data[site] ^= 0x5A; // non-zero mask: payload always changes
            self.m.corrupted.inc();
        }
    }

    /// Shared prologue for single-key ops: window effects + failure draw.
    /// Returns `(attempt, slow_factor, entry_ns)` for the epilogue.
    fn gate(&self, is_read: bool, key: &str, what: &str) -> Result<Option<(u64, f64, u64)>> {
        if !self.in_scope(is_read) {
            return Ok(None);
        }
        let now = self.clock.now_secs();
        if self.plan.in_outage(now) {
            // Outages still consume an attempt so the draw stream stays
            // aligned with a healthy run of the same call sequence.
            let _ = self.next_attempt(key);
            return Err(self.outage_error(what));
        }
        self.charge_spike(now);
        let attempt = self.admit(key, self.plan.rate_at(now), what)?;
        let factor = if is_read { self.plan.slow_factor_at(now) } else { 1.0 };
        Ok(Some((attempt, factor, self.clock.now_ns())))
    }
}

impl ObjectStore for FaultStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        match self.gate(false, key, "put")? {
            None => self.inner.put(key, data),
            Some((attempt, _, _)) => {
                // Write-path corruption lands in the stored object, so the
                // returned meta checksums the damaged bytes — which is how
                // the integrity layer catches it against the original
                // payload and turns it into a retryable failure.
                if self.plan.corrupt_rate > 0.0 {
                    let mut payload = data.to_vec();
                    self.maybe_corrupt(key, attempt, &mut payload);
                    self.inner.put(key, &payload)
                } else {
                    self.inner.put(key, data)
                }
            }
        }
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        match self.gate(true, key, "get")? {
            None => self.inner.get(key),
            Some((attempt, factor, entry_ns)) => {
                let mut data = self.inner.get(key)?;
                self.charge_slowdown(factor, entry_ns);
                self.maybe_corrupt(key, attempt, &mut data);
                Ok(data)
            }
        }
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        match self.gate(true, key, "get_range")? {
            None => self.inner.get_range(key, offset, len),
            Some((attempt, factor, entry_ns)) => {
                let mut data = self.inner.get_range(key, offset, len)?;
                self.charge_slowdown(factor, entry_ns);
                self.maybe_corrupt(key, attempt, &mut data);
                Ok(data)
            }
        }
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        if !self.in_scope(true) {
            return self.inner.get_many(keys);
        }
        let now = self.clock.now_secs();
        if self.plan.in_outage(now) {
            return keys
                .iter()
                .map(|k| {
                    let _ = self.next_attempt(k);
                    Err(self.outage_error("get_many"))
                })
                .collect();
        }
        // One spike charge and one slow-read factor per batch: the batch is
        // one network episode, mirroring the WAN model's single jitter draw.
        self.charge_spike(now);
        let rate = self.plan.rate_at(now);
        let factor = self.plan.slow_factor_at(now);

        let mut out: Vec<Option<Result<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        let mut pass_idx = Vec::with_capacity(keys.len());
        let mut pass_keys = Vec::with_capacity(keys.len());
        let mut pass_attempts = Vec::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            match self.admit(k, rate, "get_many") {
                Ok(attempt) => {
                    pass_idx.push(i);
                    pass_keys.push(*k);
                    pass_attempts.push(attempt);
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        if !pass_keys.is_empty() {
            let entry_ns = self.clock.now_ns();
            let results = self.inner.get_many(&pass_keys);
            self.charge_slowdown(factor, entry_ns);
            for ((i, attempt), r) in pass_idx.into_iter().zip(pass_attempts).zip(results) {
                out[i] = Some(r.map(|mut data| {
                    self.maybe_corrupt(keys[i], attempt, &mut data);
                    data
                }));
            }
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        if !self.in_scope(false) {
            return self.inner.put_many(items);
        }
        let now = self.clock.now_secs();
        if self.plan.in_outage(now) {
            return items
                .iter()
                .map(|(k, _)| {
                    let _ = self.next_attempt(k);
                    Err(self.outage_error("put_many"))
                })
                .collect();
        }
        // One spike charge per batch, exactly like `get_many`: the upload
        // wave is one network episode. Per-key admission and corruption
        // draws consume the same pure `(seed, key, attempt)` stream as
        // single puts, so batch composition never shifts the sequence.
        self.charge_spike(now);
        let rate = self.plan.rate_at(now);
        let mut out: Vec<Option<Result<ObjectMeta>>> = items.iter().map(|_| None).collect();
        let mut pass_idx = Vec::with_capacity(items.len());
        let mut pass_payloads: Vec<std::borrow::Cow<[u8]>> = Vec::with_capacity(items.len());
        for (i, (k, d)) in items.iter().enumerate() {
            match self.admit(k, rate, "put_many") {
                Ok(attempt) => {
                    let payload = if self.plan.corrupt_rate > 0.0 {
                        let mut copy = d.to_vec();
                        self.maybe_corrupt(k, attempt, &mut copy);
                        std::borrow::Cow::Owned(copy)
                    } else {
                        std::borrow::Cow::Borrowed(*d)
                    };
                    pass_idx.push(i);
                    pass_payloads.push(payload);
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        if !pass_idx.is_empty() {
            let pass_items: Vec<(&str, &[u8])> = pass_idx
                .iter()
                .zip(&pass_payloads)
                .map(|(&i, p)| (items[i].0, p.as_ref()))
                .collect();
            for (&i, r) in pass_idx.iter().zip(self.inner.put_many(&pass_items)) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.gate(true, key, "head")?;
        self.inner.head(key)
    }

    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        if !self.in_scope(true) {
            return self.inner.head_many(keys);
        }
        let now = self.clock.now_secs();
        if self.plan.in_outage(now) {
            return keys
                .iter()
                .map(|k| {
                    let _ = self.next_attempt(k);
                    Err(self.outage_error("head_many"))
                })
                .collect();
        }
        self.charge_spike(now);
        let rate = self.plan.rate_at(now);
        let mut out: Vec<Option<Result<ObjectMeta>>> = keys.iter().map(|_| None).collect();
        let mut pass_idx = Vec::with_capacity(keys.len());
        let mut pass_keys = Vec::with_capacity(keys.len());
        for (i, k) in keys.iter().enumerate() {
            match self.admit(k, rate, "head_many") {
                Ok(_) => {
                    pass_idx.push(i);
                    pass_keys.push(*k);
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        if !pass_keys.is_empty() {
            for (i, r) in pass_idx.into_iter().zip(self.inner.head_many(&pass_keys)) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.gate(true, prefix, "list")?;
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.gate(false, key, "delete")?;
        self.inner.delete(key)
    }

    fn describe(&self) -> String {
        format!(
            "{} under fault plan (rate {:.0}%, corrupt {:.1}%, {} windows)",
            self.inner.describe(),
            self.plan.fault_rate * 100.0,
            self.plan.corrupt_rate * 100.0,
            self.plan.windows.len()
        )
    }

    fn set_wave_priority(&self, priority: Priority) {
        self.inner.set_wave_priority(priority);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;

    fn seeded_store(n: usize) -> (Arc<MemoryStore>, Vec<String>) {
        let mem = Arc::new(MemoryStore::new());
        let keys: Vec<String> = (0..n).map(|i| format!("k{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            mem.put(k, format!("v{i}").as_bytes()).unwrap();
        }
        (mem, keys)
    }

    fn fault(mem: Arc<MemoryStore>, plan: FaultPlan, clock: SimClock) -> FaultStore {
        FaultStore::new(mem, plan, clock).unwrap()
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let (mem, keys) = seeded_store(20);
        let s = fault(mem, FaultPlan::new(1), SimClock::new());
        for k in &keys {
            s.get(k).unwrap();
        }
        assert_eq!(s.injected_failures(), 0);
        assert_eq!(s.corrupted_payloads(), 0);
    }

    #[test]
    fn failure_decision_is_pure_in_seed_key_attempt() {
        // The same key must see the same fail/pass sequence no matter what
        // other keys share its batches.
        let plan = || FaultPlan::new(99).with_fault_rate(0.5).with_scope(FailScope::Reads);
        let (mem, keys) = seeded_store(12);
        let solo = fault(mem.clone(), plan(), SimClock::new());
        let solo_outcomes: Vec<Vec<bool>> =
            keys.iter().map(|k| (0..4).map(|_| solo.get(k).is_ok()).collect()).collect();

        // Same draws, but interleaved through batches of shifting shape.
        let batched = fault(mem, plan(), SimClock::new());
        let mut batch_outcomes: Vec<Vec<bool>> = keys.iter().map(|_| Vec::new()).collect();
        for round in 0..4 {
            // Rotate the batch order each round so draw order differs.
            let mut order: Vec<usize> = (0..keys.len()).collect();
            order.rotate_left(round * 3 % keys.len());
            let refs: Vec<&str> = order.iter().map(|&i| keys[i].as_str()).collect();
            for (&i, r) in order.iter().zip(batched.get_many(&refs)) {
                batch_outcomes[i].push(r.is_ok());
            }
        }
        assert_eq!(solo_outcomes, batch_outcomes);
    }

    #[test]
    fn write_failure_decision_is_pure_in_seed_key_attempt() {
        // Satellite-4 regression: the write scope draws from the same pure
        // `(seed, key, attempt)` stream as reads — the same key sees the
        // same fail/pass sequence whether written one `put` at a time or
        // through `put_many` batches of shifting shape and order.
        let plan = || FaultPlan::new(99).with_fault_rate(0.5).with_scope(FailScope::Writes);
        let keys: Vec<String> = (0..12).map(|i| format!("k{i}")).collect();
        let body = b"payload";
        let solo = fault(Arc::new(MemoryStore::new()), plan(), SimClock::new());
        let solo_outcomes: Vec<Vec<bool>> =
            keys.iter().map(|k| (0..4).map(|_| solo.put(k, body).is_ok()).collect()).collect();

        let batched = fault(Arc::new(MemoryStore::new()), plan(), SimClock::new());
        let mut batch_outcomes: Vec<Vec<bool>> = keys.iter().map(|_| Vec::new()).collect();
        for round in 0..4 {
            let mut order: Vec<usize> = (0..keys.len()).collect();
            order.rotate_left(round * 3 % keys.len());
            let items: Vec<(&str, &[u8])> =
                order.iter().map(|&i| (keys[i].as_str(), body as &[u8])).collect();
            for (&i, r) in order.iter().zip(batched.put_many(&items)) {
                batch_outcomes[i].push(r.is_ok());
            }
        }
        assert_eq!(solo_outcomes, batch_outcomes);
        // And the read stream is the *same* stream: a write consumes the
        // attempt a subsequent read would otherwise have drawn.
        assert_eq!(solo.attempts_for("k0"), 4);
    }

    #[test]
    fn write_corruption_lands_in_store_and_checksums_the_damage() {
        let mem = Arc::new(MemoryStore::new());
        let run = |mem: &Arc<MemoryStore>| {
            let s = fault(
                mem.clone(),
                FaultPlan::new(5).with_corrupt_rate(0.4).with_scope(FailScope::Writes),
                SimClock::new(),
            );
            let keys: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
            let items: Vec<(&str, &[u8])> =
                keys.iter().map(|k| (k.as_str(), b"clean-payload" as &[u8])).collect();
            let metas = s.put_many(&items);
            (keys, metas, s.corrupted_payloads())
        };
        let (keys, metas, corrupted) = run(&mem);
        assert!(corrupted > 5, "rate 0.4 over 40 writes corrupts something");
        assert!(corrupted < 40, "but not everything");
        let mut damaged = 0;
        for (k, m) in keys.iter().zip(&metas) {
            let stored = mem.get(k).unwrap();
            // The returned meta checksums the *stored* (possibly damaged)
            // bytes — that mismatch versus the original payload is what the
            // integrity layer detects.
            assert_eq!(m.as_ref().unwrap().checksum, fnv1a64(&stored));
            if stored != b"clean-payload" {
                damaged += 1;
            }
        }
        assert_eq!(damaged, corrupted as usize);
        // Same seed, same damage: byte-determinism across reruns.
        let mem2 = Arc::new(MemoryStore::new());
        run(&mem2);
        for k in &keys {
            assert_eq!(mem.get(k).unwrap(), mem2.get(k).unwrap());
        }
    }

    #[test]
    fn outage_window_fails_everything_then_recovers() {
        let (mem, keys) = seeded_store(4);
        let clock = SimClock::new();
        let s = fault(mem, FaultPlan::new(7).outage(1.0, 2.0), clock.clone());
        for k in &keys {
            s.get(k).unwrap(); // before the window
        }
        clock.advance_secs(1.5);
        for k in &keys {
            assert!(s.get(k).is_err(), "inside the outage window");
        }
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        assert!(s.get_many(&refs).iter().all(|r| r.is_err()));
        clock.advance_secs(1.0);
        for k in &keys {
            s.get(k).unwrap(); // after the window
        }
        assert!(s.injected_failures() >= 8);
    }

    #[test]
    fn latency_spike_charges_virtual_time() {
        let (mem, keys) = seeded_store(2);
        let clock = SimClock::new();
        let s = fault(mem, FaultPlan::new(7).latency_spike(0.0, 10.0, 0.25), clock.clone());
        s.get(&keys[0]).unwrap();
        assert_eq!(clock.now_ns(), 250_000_000);
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        s.get_many(&refs); // one charge per batch
        assert_eq!(clock.now_ns(), 500_000_000);
    }

    #[test]
    fn slow_reads_multiply_inner_cost() {
        use crate::wan::{CloudStore, NetworkProfile};
        let (mem, keys) = seeded_store(1);
        let clock = SimClock::new();
        let wan = Arc::new(CloudStore::new(mem.clone(), NetworkProfile::local(), clock.clone(), 3));
        let plain_cost = {
            wan.get(&keys[0]).unwrap();
            clock.now_ns()
        };
        let clock2 = SimClock::new();
        let wan2 = Arc::new(CloudStore::new(mem, NetworkProfile::local(), clock2.clone(), 3));
        let s = fault(
            Arc::new(MemoryStore::new()), // placeholder, replaced below
            FaultPlan::new(7),
            clock2.clone(),
        );
        drop(s);
        let s = FaultStore::new(wan2, FaultPlan::new(7).slow_reads(0.0, 10.0, 3.0), clock2.clone())
            .unwrap();
        s.get(&keys[0]).unwrap();
        // 3x the WAN cost: the surcharge is exactly 2x the inner charge.
        assert_eq!(clock2.now_ns(), plain_cost * 3);
    }

    #[test]
    fn error_burst_raises_rate_inside_window_only() {
        let (mem, keys) = seeded_store(40);
        let clock = SimClock::new();
        let s = fault(mem, FaultPlan::new(11).error_burst(5.0, 6.0, 1.0), clock.clone());
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        assert!(s.get_many(&refs).iter().all(|r| r.is_ok()), "no faults outside the burst");
        clock.advance_secs(5.5);
        assert!(s.get_many(&refs).iter().all(|r| r.is_err()), "burst rate 1.0 fails all");
        clock.advance_secs(1.0);
        assert!(s.get_many(&refs).iter().all(|r| r.is_ok()));
    }

    #[test]
    fn corruption_damages_payload_deterministically() {
        let (mem, keys) = seeded_store(50);
        let run = || {
            let s = fault(mem.clone(), FaultPlan::new(5).with_corrupt_rate(0.3), SimClock::new());
            keys.iter().map(|k| s.get(k).unwrap()).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "corruption sites are seed-deterministic");
        let clean: Vec<Vec<u8>> = keys.iter().map(|k| mem.get(k).unwrap()).collect();
        let damaged = a.iter().zip(&clean).filter(|(got, want)| got != want).count();
        assert!(damaged > 5, "rate 0.3 over 50 reads corrupts something, got {damaged}");
        assert!(damaged < 30, "rate 0.3 must not corrupt everything, got {damaged}");
    }

    #[test]
    fn writes_untouched_under_read_scope() {
        let mem = Arc::new(MemoryStore::new());
        let s = fault(
            mem,
            FaultPlan::new(3).with_fault_rate(1.0).with_scope(FailScope::Reads),
            SimClock::new(),
        );
        s.put("k", b"v").unwrap();
        assert!(s.get("k").is_err());
    }

    #[test]
    fn invalid_plans_rejected() {
        let mem: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        for plan in [
            FaultPlan::new(1).with_fault_rate(1.5),
            FaultPlan::new(1).with_corrupt_rate(-0.1),
            FaultPlan::new(1).outage(5.0, 5.0),
            FaultPlan::new(1).error_burst(0.0, 1.0, 2.0),
            FaultPlan::new(1).slow_reads(0.0, 1.0, 0.5),
            FaultPlan::new(1).latency_spike(0.0, 1.0, -0.5),
        ] {
            assert!(FaultStore::new(mem.clone(), plan, SimClock::new()).is_err());
        }
    }

    #[test]
    fn head_many_draws_per_key() {
        let (mem, keys) = seeded_store(30);
        let plan = || FaultPlan::new(21).with_fault_rate(0.4).with_scope(FailScope::Reads);
        let singles = {
            let s = fault(mem.clone(), plan(), SimClock::new());
            keys.iter().map(|k| s.head(k).is_ok()).collect::<Vec<_>>()
        };
        let batched = {
            let s = fault(mem, plan(), SimClock::new());
            let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
            s.head_many(&refs).iter().map(|r| r.is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(singles, batched);
        assert!(singles.iter().any(|&ok| !ok) && singles.iter().any(|&ok| ok));
    }
}
