//! The `ObjectStore` trait — NSDF's storage entry-point abstraction.
//!
//! Everything above this layer (IDX blocks, FUSE files, catalog logs,
//! workflow artifacts) addresses storage through S3-style object semantics:
//! whole-object put/get plus ranged reads, keyed by `/`-separated paths.
//! Backends differ only in where bytes live (memory, local disk) and what
//! network sits in front (the WAN simulator).

use nsdf_util::{NsdfError, Result};

/// Scheduling class of the waves a store handle is about to submit.
///
/// The shared-WAN admission layer ([`crate::sched`]) multiplexes many
/// tenants over one modeled link; callers that know *why* they are about
/// to issue a wave (an interactive pan, a speculative prefetch, a bulk
/// ingest upload) tag the handle so the scheduler can order and shed
/// work by urgency. Stores that do not schedule simply ignore the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// A user is waiting on this wave right now (pans, refines, playback
    /// frames). Never deferred, never shed.
    Interactive,
    /// Speculative work issued during think time (viewport/timestep
    /// prefetch). First to be shed under backpressure.
    Prefetch,
    /// Throughput-oriented background transfers (dataset ingest, RMW
    /// fetches of the write path). Rate-limited by per-tenant token
    /// buckets so they cannot starve interactive waves.
    Bulk,
}

impl Priority {
    /// All tiers, in urgency order (most urgent first).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Prefetch, Priority::Bulk];

    /// Stable lowercase name used in metric scopes and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Prefetch => "prefetch",
            Priority::Bulk => "bulk",
        }
    }

    /// Urgency rank: lower is served first at equal virtual deadlines.
    pub fn rank(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Prefetch => 1,
            Priority::Bulk => 2,
        }
    }
}

/// Metadata for one stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Full object key.
    pub key: String,
    /// Payload size in bytes.
    pub size: u64,
    /// FNV-1a content checksum.
    pub checksum: u64,
    /// Logical modification stamp (monotonic per store).
    pub modified: u64,
}

/// S3-style object storage.
///
/// Implementations must be thread-safe; the IDX reader issues concurrent
/// block fetches against a shared store.
pub trait ObjectStore: Send + Sync {
    /// Store `data` under `key`, replacing any existing object.
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta>;

    /// Fetch the full payload of `key`.
    fn get(&self, key: &str) -> Result<Vec<u8>>;

    /// Fetch `len` bytes starting at `offset`.
    ///
    /// The default implementation fetches the whole object and slices;
    /// backends with cheaper ranged access should override.
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let data = self.get(key)?;
        slice_range(&data, offset, len, key)
    }

    /// Fetch many objects in one call, returning per-key results in input
    /// order.
    ///
    /// This is the batched entry point the parallel IDX block pipeline
    /// uses: backends that can amortize per-request overhead (the WAN
    /// simulator's parallel streams, the cache's single lock pass) override
    /// it; the default simply loops over [`ObjectStore::get`]. A failed key
    /// never aborts the batch — callers decide per key how to treat
    /// `NotFound` (unwritten block) versus transport errors.
    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Store many objects in one call, returning per-key results in input
    /// order.
    ///
    /// The batched entry point of the parallel ingest pipeline, mirroring
    /// [`ObjectStore::get_many`] on the write side: backends that can
    /// amortize per-request overhead (the WAN simulator's parallel upload
    /// streams, thread-parallel disk writes) override it; the default
    /// simply loops over [`ObjectStore::put`]. A failed key never aborts
    /// the batch — callers retry or surface failures per key.
    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        items.iter().map(|(k, d)| self.put(k, d)).collect()
    }

    /// Metadata without the payload.
    fn head(&self, key: &str) -> Result<ObjectMeta>;

    /// Metadata for many objects in one call, per-key results in input
    /// order.
    ///
    /// The integrity layer uses this to verify a whole fetched batch
    /// against stored checksums without paying one WAN round trip per key;
    /// the WAN simulator overrides it to amortize like [`ObjectStore::get_many`].
    /// A failed key never aborts the batch.
    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        keys.iter().map(|k| self.head(k)).collect()
    }

    /// All objects whose key starts with `prefix`, sorted by key.
    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>>;

    /// Remove `key`. Removing a missing key is an error.
    fn delete(&self, key: &str) -> Result<()>;

    /// True when `key` exists.
    fn exists(&self, key: &str) -> Result<bool> {
        match self.head(key) {
            Ok(_) => Ok(true),
            Err(e) if e.is_not_found() => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Human-readable backend description (for logs and reports).
    fn describe(&self) -> String {
        "object store".to_string()
    }

    /// Tag the scheduling class of the waves this handle submits next.
    ///
    /// Callers that distinguish demand from speculation (the session
    /// engine's fetch vs prefetch waves, the dataset write path) set this
    /// immediately before issuing a wave; the scheduler-aware wrapper
    /// ([`crate::sched::SchedStore`]) records it, layered wrappers forward
    /// it inward, and plain backends ignore it.
    fn set_wave_priority(&self, _priority: Priority) {}
}

/// Validate an object key: non-empty `/`-separated segments, no `.`/`..`,
/// no leading or trailing slash, printable ASCII subset.
pub fn validate_key(key: &str) -> Result<()> {
    if key.is_empty() || key.len() > 1024 {
        return Err(NsdfError::invalid(format!("bad key length for {key:?}")));
    }
    if key.starts_with('/') || key.ends_with('/') {
        return Err(NsdfError::invalid(format!("key {key:?} must not start or end with '/'")));
    }
    for seg in key.split('/') {
        if seg.is_empty() {
            return Err(NsdfError::invalid(format!("key {key:?} has an empty segment")));
        }
        if seg == "." || seg == ".." {
            return Err(NsdfError::invalid(format!("key {key:?} contains a dot segment")));
        }
        if !seg.bytes().all(|b| b.is_ascii_alphanumeric() || b"-_.".contains(&b)) {
            return Err(NsdfError::invalid(format!("key segment {seg:?} has invalid characters")));
        }
    }
    Ok(())
}

/// Shared ranged-read slicing with bounds checking.
pub fn slice_range(data: &[u8], offset: u64, len: u64, key: &str) -> Result<Vec<u8>> {
    let end = offset.checked_add(len).ok_or_else(|| NsdfError::invalid("range overflow"))?;
    if end > data.len() as u64 {
        return Err(NsdfError::invalid(format!(
            "range {offset}+{len} exceeds object {key:?} of {} bytes",
            data.len()
        )));
    }
    Ok(data[offset as usize..end as usize].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_keys_accepted() {
        for k in ["a", "data/blocks/000001.bin", "conus_30m.idx", "a-b_c.d/e"] {
            assert!(validate_key(k).is_ok(), "{k}");
        }
    }

    #[test]
    fn invalid_keys_rejected() {
        for k in ["", "/abs", "trail/", "a//b", "a/../b", ".", "sp ace", "uni\u{e9}"] {
            assert!(validate_key(k).is_err(), "{k}");
        }
    }

    #[test]
    fn slice_range_bounds() {
        let d = b"0123456789";
        assert_eq!(slice_range(d, 2, 3, "k").unwrap(), b"234");
        assert_eq!(slice_range(d, 0, 10, "k").unwrap(), d.to_vec());
        assert_eq!(slice_range(d, 10, 0, "k").unwrap(), Vec::<u8>::new());
        assert!(slice_range(d, 8, 3, "k").is_err());
        assert!(slice_range(d, u64::MAX, 2, "k").is_err());
    }
}
