//! Byte-budgeted LRU object cache.
//!
//! OpenVisus is "caching-enabled" (§III-A): once a block has streamed from
//! remote storage it is served locally on re-access, which is what makes
//! interactive pan/zoom affordable over a WAN. `CachedStore` provides that
//! layer for any inner [`ObjectStore`], with whole-object granularity —
//! IDX blocks are the objects, so block granularity and object granularity
//! coincide.

use crate::store::{slice_range, ObjectMeta, ObjectStore};
use nsdf_util::Result;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache hit/miss accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from cache.
    pub hits: u64,
    /// Reads that had to go to the inner store.
    pub misses: u64,
    /// Objects evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently cached.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no reads happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    tick: u64,
}

#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<String, Entry>,
    /// Recency queue with lazy invalidation: `(key, tick)` pairs; a pair is
    /// live only if the entry's current tick matches.
    queue: VecDeque<(String, u64)>,
    next_tick: u64,
    resident: u64,
    stats: CacheStats,
}

impl LruState {
    fn touch(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        let tick = self.next_tick;
        let entry = self.entries.get_mut(key)?;
        entry.tick = tick;
        self.next_tick += 1;
        self.queue.push_back((key.to_string(), tick));
        Some(entry.data.clone())
    }

    fn insert(&mut self, key: String, data: Arc<Vec<u8>>, capacity: u64) {
        if data.len() as u64 > capacity {
            return; // Larger than the whole cache: never admit.
        }
        if let Some(old) = self.entries.remove(&key) {
            self.resident -= old.data.len() as u64;
        }
        self.resident += data.len() as u64;
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(key.clone(), Entry { data, tick });
        self.queue.push_back((key, tick));
        self.evict_to(capacity);
    }

    fn remove(&mut self, key: &str) {
        if let Some(old) = self.entries.remove(key) {
            self.resident -= old.data.len() as u64;
        }
    }

    fn evict_to(&mut self, capacity: u64) {
        while self.resident > capacity {
            let Some((key, tick)) = self.queue.pop_front() else { break };
            let live = self.entries.get(&key).is_some_and(|e| e.tick == tick);
            if live {
                self.remove(&key);
                self.stats.evictions += 1;
            }
        }
    }
}

/// LRU read-through / write-through cache over an inner store.
pub struct CachedStore {
    inner: Arc<dyn ObjectStore>,
    capacity: u64,
    state: Mutex<LruState>,
}

impl CachedStore {
    /// Cache up to `capacity_bytes` of object payloads in front of `inner`.
    pub fn new(inner: Arc<dyn ObjectStore>, capacity_bytes: u64) -> Self {
        CachedStore { inner, capacity: capacity_bytes, state: Mutex::new(LruState::default()) }
    }

    /// Current statistics (hit rate, residency, evictions).
    pub fn stats(&self) -> CacheStats {
        let st = self.state.lock();
        CacheStats { resident_bytes: st.resident, ..st.stats.clone() }
    }

    /// Drop all cached objects (statistics are preserved).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.queue.clear();
        st.resident = 0;
    }

    /// Configured byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn cached_get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        {
            let mut st = self.state.lock();
            if let Some(data) = st.touch(key) {
                st.stats.hits += 1;
                return Ok(data);
            }
            st.stats.misses += 1;
        }
        // Fetch outside the lock so a slow WAN get doesn't serialize hits.
        let data = Arc::new(self.inner.get(key)?);
        self.state.lock().insert(key.to_string(), data.clone(), self.capacity);
        Ok(data)
    }
}

impl ObjectStore for CachedStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        let meta = self.inner.put(key, data)?;
        self.state
            .lock()
            .insert(key.to_string(), Arc::new(data.to_vec()), self.capacity);
        Ok(meta)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        Ok(self.cached_get(key)?.as_ref().clone())
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let data = self.cached_get(key)?;
        slice_range(&data, offset, len, key)
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.inner.head(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)?;
        self.state.lock().remove(key);
        Ok(())
    }

    fn describe(&self) -> String {
        format!("{} with {} byte LRU cache", self.inner.describe(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use crate::wan::{CloudStore, NetworkProfile};
    use nsdf_util::SimClock;

    fn cached(capacity: u64) -> CachedStore {
        CachedStore::new(Arc::new(MemoryStore::new()), capacity)
    }

    #[test]
    fn second_read_hits() {
        let c = cached(1 << 20);
        c.put("k", b"value").unwrap();
        c.clear(); // start cold
        c.get("k").unwrap();
        c.get("k").unwrap();
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.resident_bytes, 5);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn put_warms_cache() {
        let c = cached(1 << 20);
        c.put("k", b"warm").unwrap();
        c.get("k").unwrap();
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn eviction_respects_budget_and_lru_order() {
        let c = cached(25);
        for k in ["a", "b", "c"] {
            c.put(k, &[0u8; 10]).unwrap(); // 30 bytes total -> evict oldest
        }
        let s = c.stats();
        assert!(s.resident_bytes <= 25);
        assert_eq!(s.evictions, 1);
        c.clear();
        // Re-warm a and c, touch a, then add d: b is long gone, c is LRU.
        c.get("a").unwrap();
        c.get("c").unwrap();
        c.get("a").unwrap(); // a more recent than c
        c.put("d", &[0u8; 10]).unwrap();
        let before = c.stats().misses;
        c.get("a").unwrap(); // should still be cached
        assert_eq!(c.stats().misses, before);
        c.get("c").unwrap(); // was evicted -> miss
        assert_eq!(c.stats().misses, before + 1);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let c = cached(8);
        c.put("big", &[0u8; 100]).unwrap();
        assert_eq!(c.stats().resident_bytes, 0);
        c.get("big").unwrap();
        c.get("big").unwrap();
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn delete_invalidates() {
        let c = cached(1 << 20);
        c.put("k", b"v").unwrap();
        c.delete("k").unwrap();
        assert!(c.get("k").unwrap_err().is_not_found());
        assert_eq!(c.stats().resident_bytes, 0);
    }

    #[test]
    fn ranged_reads_served_from_cached_object() {
        let c = cached(1 << 20);
        c.put("k", b"0123456789").unwrap();
        assert_eq!(c.get_range("k", 2, 4).unwrap(), b"2345");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn cache_in_front_of_wan_cuts_virtual_time() {
        let clock = SimClock::new();
        let wan = Arc::new(CloudStore::new(
            Arc::new(MemoryStore::new()),
            NetworkProfile::public_dataverse(),
            clock.clone(),
            7,
        ));
        let cached = CachedStore::new(wan, 64 << 20);
        cached.put("block", &vec![1u8; 1 << 20]).unwrap();
        cached.clear();
        let t0 = clock.now_ns();
        cached.get("block").unwrap();
        let cold = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        cached.get("block").unwrap();
        let warm = clock.now_ns() - t1;
        assert!(cold > 0);
        assert_eq!(warm, 0, "warm read must not touch the WAN");
    }
}
