//! Byte-budgeted LRU object cache with single-flight fetch deduplication.
//!
//! OpenVisus is "caching-enabled" (§III-A): once a block has streamed from
//! remote storage it is served locally on re-access, which is what makes
//! interactive pan/zoom affordable over a WAN. `CachedStore` provides that
//! layer for any inner [`ObjectStore`], with whole-object granularity —
//! IDX blocks are the objects, so block granularity and object granularity
//! coincide.
//!
//! The parallel IDX read pipeline issues concurrent misses, so the cache is
//! **single-flight**: when several threads miss on the same key at once,
//! exactly one (the leader) fetches from the inner store while the rest
//! wait on an in-flight slot and share the leader's result. Fetch errors
//! are handed to the waiters but never cached, so the next reader retries.
//! Hits are served under a lock held only for the map lookup — they are
//! never queued behind a slow WAN miss.
//!
//! Admission is pluggable ([`AdmissionPolicy`]): the default is plain LRU,
//! and [`CachedStore::with_admission`] can enable a TinyLFU-style
//! scan-resistant policy — a new key that would force evictions is
//! admitted only if its estimated access frequency (per
//! [`crate::tiered::FrequencySketch`]) beats every victim it would
//! displace, so one bulk scan streaming through the cache cannot flush an
//! interactive working set that is re-read many times.

use crate::store::{slice_range, ObjectMeta, ObjectStore};
use crate::tiered::FrequencySketch;
use nsdf_util::obs::{Counter, Gauge, Obs};
use nsdf_util::{fnv1a64, NsdfError, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache hit/miss accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from cache.
    pub hits: u64,
    /// Reads that had to go to the inner store.
    pub misses: u64,
    /// Objects evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently cached.
    pub resident_bytes: u64,
    /// Reads that piggy-backed on another thread's in-flight fetch instead
    /// of issuing their own (single-flight deduplication).
    pub coalesced_waits: u64,
    /// Reads that declined to share an in-flight fetch because a write
    /// landed after that fetch started — sharing its (possibly pre-write)
    /// payload would not be linearizable — and went to the inner store
    /// directly instead.
    pub stale_flight_bypasses: u64,
    /// Insertions the admission policy declined (TinyLFU only): the new
    /// key's estimated frequency did not beat the entries it would evict.
    pub admission_rejects: u64,
}

/// How [`CachedStore`] decides whether a new object may displace resident
/// ones once the byte budget is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Always admit; evict in recency order. Recency-friendly but a bulk
    /// scan flushes everything.
    #[default]
    Lru,
    /// TinyLFU: admit a new key over eviction only if its sketch-estimated
    /// frequency beats every victim it would displace. Scan-resistant —
    /// one-hit wonders bounce off the doorkeeper while the hot working set
    /// stays resident.
    TinyLfu,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no reads happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    tick: u64,
    /// Modification stamp of the write that produced this entry
    /// (`ObjectMeta::modified`, monotonic per backend), or `None` for
    /// read-through admissions. Orders racing write-throughs: a put whose
    /// inner write completed first but reached the cache lock second must
    /// not clobber the newer payload.
    stamp: Option<u64>,
}

#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<String, Entry>,
    /// Recency queue with lazy invalidation: `(key, tick)` pairs; a pair is
    /// live only if the entry's current tick matches.
    queue: VecDeque<(String, u64)>,
    next_tick: u64,
    resident: u64,
    /// Bumped by every write/delete. A single-flight leader records the
    /// epoch when it misses; if a write lands while its fetch is in flight
    /// the epochs no longer match at publish time and the (possibly
    /// pre-write) payload is handed to waiters but never admitted — so a
    /// fetch that raced a write can never clobber the newer write-through.
    write_epoch: u64,
    /// Access-frequency sketch, present only under
    /// [`AdmissionPolicy::TinyLfu`]. Reads feed it in [`LruState::touch`]
    /// (hits and misses alike); write-throughs feed it in
    /// [`LruState::insert`].
    sketch: Option<FrequencySketch>,
}

impl LruState {
    fn touch(&mut self, key: &str) -> Option<Arc<Vec<u8>>> {
        if let Some(sketch) = &mut self.sketch {
            sketch.record(fnv1a64(key.as_bytes()));
        }
        let tick = self.next_tick;
        let entry = self.entries.get_mut(key)?;
        entry.tick = tick;
        self.next_tick += 1;
        self.queue.push_back((key.to_string(), tick));
        Some(entry.data.clone())
    }

    /// Admit `data`; returns the number of live entries evicted to stay
    /// within `capacity` (reported to the metrics registry by the caller)
    /// and whether the admission policy rejected the insert outright.
    ///
    /// `stamp` is `Some(modified)` for write-throughs and `None` for
    /// read-through admissions. A write-through older than the entry
    /// already cached is dropped: two tenants racing `put`s on one key can
    /// reach this lock in the opposite order of their inner writes, and
    /// the cache must converge on whichever payload the store kept.
    ///
    /// Under TinyLFU, a *new* key whose insert would force evictions is
    /// admitted only if its sketch frequency beats every victim it would
    /// displace; updates to already-resident keys are always admitted so a
    /// write-through can never be rejected into staleness.
    fn insert(
        &mut self,
        key: String,
        data: Arc<Vec<u8>>,
        stamp: Option<u64>,
        capacity: u64,
    ) -> (u64, bool) {
        if data.len() as u64 > capacity {
            return (0, false); // Larger than the whole cache: never admit.
        }
        if let (Some(new), Some(Entry { stamp: Some(old), .. })) = (stamp, self.entries.get(&key)) {
            if *old > new {
                return (0, false); // A newer write-through already landed.
            }
        }
        if stamp.is_some() {
            // Write-throughs never pass through `touch`; count the access
            // here so repeated writers build frequency. (Read-throughs were
            // already recorded by their miss-time `touch`.)
            if let Some(sketch) = &mut self.sketch {
                sketch.record(fnv1a64(key.as_bytes()));
            }
        }
        if let Some(sketch) = &self.sketch {
            let need = data.len() as u64;
            if !self.entries.contains_key(&key) && self.resident + need > capacity {
                let cand = sketch.frequency(fnv1a64(key.as_bytes()));
                let deficit = self.resident + need - capacity;
                let mut freed = 0u64;
                for (k, tick) in &self.queue {
                    if freed >= deficit {
                        break;
                    }
                    // Dead queue pairs (stale ticks) are not victims.
                    let Some(e) = self.entries.get(k).filter(|e| e.tick == *tick) else {
                        continue;
                    };
                    if sketch.frequency(fnv1a64(k.as_bytes())) >= cand {
                        return (0, true); // The victim is at least as hot.
                    }
                    freed += e.data.len() as u64;
                }
            }
        }
        if let Some(old) = self.entries.remove(&key) {
            self.resident -= old.data.len() as u64;
        }
        self.resident += data.len() as u64;
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(key.clone(), Entry { data, tick, stamp });
        self.queue.push_back((key, tick));
        (self.evict_to(capacity), false)
    }

    fn remove(&mut self, key: &str) {
        if let Some(old) = self.entries.remove(key) {
            self.resident -= old.data.len() as u64;
        }
    }

    fn evict_to(&mut self, capacity: u64) -> u64 {
        let mut evicted = 0;
        while self.resident > capacity {
            let Some((key, tick)) = self.queue.pop_front() else { break };
            let live = self.entries.get(&key).is_some_and(|e| e.tick == tick);
            if live {
                self.remove(&key);
                evicted += 1;
            }
        }
        evicted
    }
}

/// One in-flight fetch that concurrent missers of the same key share.
///
/// The leader publishes into `done` and signals `cv`; waiters block on the
/// condvar until the slot fills. Results are replicated per waiter (the
/// payload through the `Arc`, errors via [`NsdfError::replicate`]).
struct InFlight {
    /// Write epoch at which the leader missed. A reader whose own miss
    /// epoch differs saw the cache *after* a write this fetch may predate,
    /// so it must not share the result.
    epoch: u64,
    done: Mutex<Option<std::result::Result<Arc<Vec<u8>>, NsdfError>>>,
    cv: Condvar,
}

impl InFlight {
    fn new(epoch: u64) -> Self {
        InFlight { epoch, done: Mutex::new(None), cv: Condvar::new() }
    }

    /// Block until the leader publishes, then return a replica of its
    /// result.
    fn wait(&self) -> Result<Arc<Vec<u8>>> {
        let mut done = self.done.lock();
        while done.is_none() {
            done = self.cv.wait(done);
        }
        match done.as_ref().expect("published") {
            Ok(data) => Ok(data.clone()),
            Err(e) => Err(e.replicate()),
        }
    }
}

/// What a missing key resolved to in the in-flight map.
enum Flight {
    /// This thread claimed the fetch and must publish into the slot.
    Leader(Arc<InFlight>),
    /// Another thread is already fetching; wait on its slot.
    Follower(Arc<InFlight>),
    /// A fetch is in flight but a write landed between its start and this
    /// read's start: its payload may predate the write, so this reader
    /// goes to the inner store directly and caches nothing.
    Bypass,
}

/// Registry handles for one `CachedStore`, under the `cache` scope.
struct CacheMetrics {
    obs: Obs,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    coalesced_waits: Counter,
    stale_flight_bypasses: Counter,
    admission_rejects: Counter,
    resident_bytes: Gauge,
}

impl CacheMetrics {
    fn new(obs: &Obs) -> Self {
        let obs = obs.scoped("cache");
        CacheMetrics {
            hits: obs.counter("hits"),
            misses: obs.counter("misses"),
            evictions: obs.counter("evictions"),
            coalesced_waits: obs.counter("coalesced_waits"),
            stale_flight_bypasses: obs.counter("stale_flight_bypasses"),
            admission_rejects: obs.counter("admission_rejects"),
            resident_bytes: obs.gauge("resident_bytes"),
            obs,
        }
    }
}

/// LRU read-through / write-through cache over an inner store.
pub struct CachedStore {
    inner: Arc<dyn ObjectStore>,
    capacity: u64,
    state: Mutex<LruState>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    m: CacheMetrics,
}

impl CachedStore {
    /// Cache up to `capacity_bytes` of object payloads in front of `inner`.
    ///
    /// Accounting goes to a private registry until
    /// [`CachedStore::with_obs`] wires in a shared one.
    pub fn new(inner: Arc<dyn ObjectStore>, capacity_bytes: u64) -> Self {
        CachedStore {
            inner,
            capacity: capacity_bytes,
            state: Mutex::new(LruState::default()),
            inflight: Mutex::new(HashMap::new()),
            m: CacheMetrics::new(&Obs::default()),
        }
    }

    /// Re-home accounting into `obs` (under its scope + `.cache`), sharing
    /// the registry with the stores below and the query layers above.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = CacheMetrics::new(obs);
        self
    }

    /// Select the admission policy. [`AdmissionPolicy::TinyLfu`] attaches a
    /// frequency sketch sized for the byte budget (assuming ~4 KiB
    /// objects); [`AdmissionPolicy::Lru`] detaches it, restoring the
    /// always-admit default.
    pub fn with_admission(self, policy: AdmissionPolicy) -> Self {
        self.state.lock().sketch = match policy {
            AdmissionPolicy::Lru => None,
            AdmissionPolicy::TinyLfu => {
                Some(FrequencySketch::with_entries((self.capacity / 4096).clamp(64, 1 << 20)))
            }
        };
        self
    }

    /// The observability handle this cache reports into (scoped `…cache`).
    pub fn obs(&self) -> &Obs {
        &self.m.obs
    }

    /// Current statistics (hit rate, residency, evictions), reconstructed
    /// from the registry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.m.hits.get(),
            misses: self.m.misses.get(),
            evictions: self.m.evictions.get(),
            resident_bytes: self.state.lock().resident,
            coalesced_waits: self.m.coalesced_waits.get(),
            stale_flight_bypasses: self.m.stale_flight_bypasses.get(),
            admission_rejects: self.m.admission_rejects.get(),
        }
    }

    /// Drop all cached objects (statistics are preserved).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.queue.clear();
        st.resident = 0;
        self.m.resident_bytes.set(0.0);
    }

    /// Configured byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Claim or join the in-flight slot for a missing key. `epoch` is the
    /// write epoch this reader observed when it missed; joining a flight
    /// started under a different epoch would let a read that began after
    /// an acked write return pre-write bytes, so such readers bypass the
    /// flight instead.
    fn join_flight(&self, key: &str, epoch: u64) -> Flight {
        let mut inflight = self.inflight.lock();
        match inflight.get(key) {
            Some(f) if f.epoch == epoch => Flight::Follower(f.clone()),
            Some(_) => Flight::Bypass,
            None => {
                let f = Arc::new(InFlight::new(epoch));
                inflight.insert(key.to_string(), f.clone());
                Flight::Leader(f)
            }
        }
    }

    /// Leader-side completion: admit a success to the LRU (unless a write
    /// bumped the epoch since the leader missed), publish the result to
    /// waiters, and retire the in-flight slot. Errors are handed to current
    /// waiters but never cached — the next reader retries.
    fn publish(&self, key: &str, flight: &InFlight, result: Result<Arc<Vec<u8>>>, epoch: u64) {
        if let Ok(data) = &result {
            let mut st = self.state.lock();
            if st.write_epoch == epoch {
                let (evicted, rejected) =
                    st.insert(key.to_string(), data.clone(), None, self.capacity);
                self.m.evictions.add(evicted);
                self.m.admission_rejects.add(u64::from(rejected));
                self.m.resident_bytes.set(st.resident as f64);
            }
        }
        *flight.done.lock() = Some(result);
        self.inflight.lock().remove(key);
        flight.cv.notify_all();
    }

    fn cached_get(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        let epoch = {
            let mut st = self.state.lock();
            if let Some(data) = st.touch(key) {
                self.m.hits.inc();
                return Ok(data);
            }
            st.write_epoch
        };
        match self.join_flight(key, epoch) {
            Flight::Leader(f) => {
                self.m.misses.inc();
                // Fetch outside every lock so a slow WAN get serializes
                // neither hits nor fetches of other keys.
                let result = self.inner.get(key).map(Arc::new);
                let replica = match &result {
                    Ok(data) => Ok(data.clone()),
                    Err(e) => Err(e.replicate()),
                };
                self.publish(key, &f, replica, epoch);
                result
            }
            Flight::Follower(f) => {
                let result = f.wait();
                self.m.coalesced_waits.inc();
                result
            }
            Flight::Bypass => {
                self.m.misses.inc();
                self.m.stale_flight_bypasses.inc();
                self.inner.get(key).map(Arc::new)
            }
        }
    }
}

impl ObjectStore for CachedStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        let meta = self.inner.put(key, data)?;
        let mut st = self.state.lock();
        st.write_epoch += 1;
        let (evicted, rejected) =
            st.insert(key.to_string(), Arc::new(data.to_vec()), Some(meta.modified), self.capacity);
        self.m.evictions.add(evicted);
        self.m.admission_rejects.add(u64::from(rejected));
        self.m.resident_bytes.set(st.resident as f64);
        Ok(meta)
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        // One inner batch (so the WAN amortizes the upload wave), then
        // write-through every stored payload under one lock acquisition —
        // the cache can never serve bytes older than an acked write. Each
        // insert carries the inner store's modification stamp so racing
        // writers from other tenants cannot reorder into staleness.
        let results = self.inner.put_many(items);
        let mut st = self.state.lock();
        st.write_epoch += 1;
        let (mut evicted, mut rejected) = (0, 0);
        for ((k, d), r) in items.iter().zip(&results) {
            if let Ok(meta) = r {
                let (e, rej) = st.insert(
                    k.to_string(),
                    Arc::new(d.to_vec()),
                    Some(meta.modified),
                    self.capacity,
                );
                evicted += e;
                rejected += u64::from(rej);
            }
        }
        self.m.evictions.add(evicted);
        self.m.admission_rejects.add(rejected);
        self.m.resident_bytes.set(st.resident as f64);
        results
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        Ok(self.cached_get(key)?.as_ref().clone())
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        let mut out: Vec<Option<Result<Vec<u8>>>> = keys.iter().map(|_| None).collect();

        // Phase 1: partition hits from misses under one lock acquisition,
        // recording the write epoch so a write landing mid-batch keeps this
        // batch's fetches out of the cache.
        let mut missing = Vec::new();
        let epoch;
        {
            let mut st = self.state.lock();
            epoch = st.write_epoch;
            let mut hits = 0;
            for (i, k) in keys.iter().enumerate() {
                if let Some(data) = st.touch(k) {
                    hits += 1;
                    out[i] = Some(Ok(data.as_ref().clone()));
                } else {
                    missing.push(i);
                }
            }
            self.m.hits.add(hits);
        }
        if missing.is_empty() {
            return out.into_iter().map(|o| o.expect("every slot decided")).collect();
        }

        // Phase 2: claim leadership for keys nobody is fetching; keys
        // already in flight (here or in another thread) are joined as
        // followers — unless that flight started under an older write
        // epoch, in which case its payload may predate a write this batch
        // has already observed: those keys are fetched directly (bypass)
        // and cached nothing. All leaderships are claimed before any
        // waiting, and leaders never wait, so batches cannot deadlock each
        // other — and a key repeated within this batch is fetched once.
        let mut leaders = Vec::new();
        let mut followers = Vec::new();
        let mut bypasses = Vec::new();
        {
            let mut inflight = self.inflight.lock();
            for i in missing {
                let k = keys[i];
                match inflight.get(k) {
                    Some(f) if f.epoch == epoch => followers.push((i, f.clone())),
                    Some(_) => bypasses.push(i),
                    None => {
                        let f = Arc::new(InFlight::new(epoch));
                        inflight.insert(k.to_string(), f.clone());
                        leaders.push((i, f));
                    }
                }
            }
        }

        // Phase 3: fetch all led and bypassed keys as one inner batch (so
        // the WAN amortizes the round trips), then publish the led ones.
        if !leaders.is_empty() || !bypasses.is_empty() {
            self.m.misses.add((leaders.len() + bypasses.len()) as u64);
            self.m.stale_flight_bypasses.add(bypasses.len() as u64);
            let fetch_idx: Vec<usize> =
                leaders.iter().map(|&(i, _)| i).chain(bypasses.iter().copied()).collect();
            let fetch_keys: Vec<&str> = fetch_idx.iter().map(|&i| keys[i]).collect();
            let mut results = self.inner.get_many(&fetch_keys).into_iter();
            for (i, f) in leaders {
                let r = results.next().expect("result per led key").map(Arc::new);
                let replica = match &r {
                    Ok(data) => Ok(data.clone()),
                    Err(e) => Err(e.replicate()),
                };
                self.publish(keys[i], &f, replica, epoch);
                out[i] = Some(r.map(|d| d.as_ref().clone()));
            }
            for i in bypasses {
                out[i] = Some(results.next().expect("result per bypassed key"));
            }
        }

        // Phase 4: collect results fetched by other threads (or by this
        // batch, for repeated keys — published above, so no waiting).
        if !followers.is_empty() {
            let n = followers.len() as u64;
            for (i, f) in followers {
                out[i] = Some(f.wait().map(|d| d.as_ref().clone()));
            }
            self.m.coalesced_waits.add(n);
        }

        out.into_iter().map(|o| o.expect("every slot decided")).collect()
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let data = self.cached_get(key)?;
        slice_range(&data, offset, len, key)
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.inner.head(key)
    }

    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        // Metadata is not cached; forward the batch so the WAN layer keeps
        // its amortized round-trip accounting.
        self.inner.head_many(keys)
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.inner.list(prefix)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(key)?;
        let mut st = self.state.lock();
        st.write_epoch += 1;
        st.remove(key);
        self.m.resident_bytes.set(st.resident as f64);
        Ok(())
    }

    fn describe(&self) -> String {
        format!("{} with {} byte LRU cache", self.inner.describe(), self.capacity)
    }

    fn set_wave_priority(&self, priority: crate::store::Priority) {
        self.inner.set_wave_priority(priority);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use crate::wan::{CloudStore, NetworkProfile};
    use nsdf_util::SimClock;

    fn cached(capacity: u64) -> CachedStore {
        CachedStore::new(Arc::new(MemoryStore::new()), capacity)
    }

    #[test]
    fn second_read_hits() {
        let c = cached(1 << 20);
        c.put("k", b"value").unwrap();
        c.clear(); // start cold
        c.get("k").unwrap();
        c.get("k").unwrap();
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.resident_bytes, 5);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn put_warms_cache() {
        let c = cached(1 << 20);
        c.put("k", b"warm").unwrap();
        c.get("k").unwrap();
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn eviction_respects_budget_and_lru_order() {
        let c = cached(25);
        for k in ["a", "b", "c"] {
            c.put(k, &[0u8; 10]).unwrap(); // 30 bytes total -> evict oldest
        }
        let s = c.stats();
        assert!(s.resident_bytes <= 25);
        assert_eq!(s.evictions, 1);
        c.clear();
        // Re-warm a and c, touch a, then add d: b is long gone, c is LRU.
        c.get("a").unwrap();
        c.get("c").unwrap();
        c.get("a").unwrap(); // a more recent than c
        c.put("d", &[0u8; 10]).unwrap();
        let before = c.stats().misses;
        c.get("a").unwrap(); // should still be cached
        assert_eq!(c.stats().misses, before);
        c.get("c").unwrap(); // was evicted -> miss
        assert_eq!(c.stats().misses, before + 1);
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let c = cached(8);
        c.put("big", &[0u8; 100]).unwrap();
        assert_eq!(c.stats().resident_bytes, 0);
        c.get("big").unwrap();
        c.get("big").unwrap();
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn delete_invalidates() {
        let c = cached(1 << 20);
        c.put("k", b"v").unwrap();
        c.delete("k").unwrap();
        assert!(c.get("k").unwrap_err().is_not_found());
        assert_eq!(c.stats().resident_bytes, 0);
    }

    #[test]
    fn ranged_reads_served_from_cached_object() {
        let c = cached(1 << 20);
        c.put("k", b"0123456789").unwrap();
        assert_eq!(c.get_range("k", 2, 4).unwrap(), b"2345");
        assert_eq!(c.stats().hits, 1);
    }

    /// Inner store that counts `get` calls and can be slowed down to force
    /// real fetch overlap in concurrency tests.
    struct CountingStore {
        inner: MemoryStore,
        gets: std::sync::atomic::AtomicU64,
        delay: std::time::Duration,
    }

    impl CountingStore {
        fn new(delay_ms: u64) -> Self {
            CountingStore {
                inner: MemoryStore::new(),
                gets: std::sync::atomic::AtomicU64::new(0),
                delay: std::time::Duration::from_millis(delay_ms),
            }
        }

        fn gets(&self) -> u64 {
            self.gets.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl ObjectStore for CountingStore {
        fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
            self.inner.put(key, data)
        }

        fn get(&self, key: &str) -> Result<Vec<u8>> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.inner.get(key)
        }

        fn head(&self, key: &str) -> Result<ObjectMeta> {
            self.inner.head(key)
        }

        fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
            self.inner.list(prefix)
        }

        fn delete(&self, key: &str) -> Result<()> {
            self.inner.delete(key)
        }
    }

    #[test]
    fn concurrent_misses_single_flight() {
        // 16 threads hammer the same cold key; the inner store must see
        // exactly one fetch, everyone must get the payload.
        let counting = Arc::new(CountingStore::new(30));
        counting.put("hot", b"block-payload").unwrap();
        let cached = Arc::new(CachedStore::new(counting.clone(), 1 << 20));
        let barrier = Arc::new(std::sync::Barrier::new(16));
        crossbeam::scope(|s| {
            for _ in 0..16 {
                let (cached, barrier) = (cached.clone(), barrier.clone());
                s.spawn(move |_| {
                    barrier.wait();
                    assert_eq!(cached.get("hot").unwrap(), b"block-payload");
                });
            }
        })
        .unwrap();
        assert_eq!(counting.gets(), 1, "single-flight must deduplicate concurrent misses");
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced_waits, 15);
        assert!(stats.coalesced_waits > 0, "with a 30ms fetch, some threads must coalesce");
    }

    #[test]
    fn single_flight_stress_metrics_count_one_inner_fetch() {
        // Satellite stress test: 32 threads hammer one cold key through a
        // shared registry; the metrics counters (not hand-rolled probes)
        // must show exactly one inner fetch, with every other reader
        // accounted for as a hit or a coalesced wait.
        let obs = Obs::default();
        let counting = Arc::new(CountingStore::new(20));
        counting.put("hot", b"payload").unwrap();
        let cached =
            Arc::new(CachedStore::new(counting.clone(), 1 << 20).with_obs(&obs.scoped("seal")));
        let threads = 32;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        crossbeam::scope(|s| {
            for _ in 0..threads {
                let (cached, barrier) = (cached.clone(), barrier.clone());
                s.spawn(move |_| {
                    barrier.wait();
                    assert_eq!(cached.get("hot").unwrap(), b"payload");
                });
            }
        })
        .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("seal.cache.misses"), 1, "exactly one inner fetch");
        assert_eq!(
            snap.counter("seal.cache.hits") + snap.counter("seal.cache.coalesced_waits"),
            threads as u64 - 1,
            "every other reader is a hit or a coalesced wait"
        );
        assert_eq!(snap.gauge("seal.cache.resident_bytes"), 7.0);
        // The registry agrees with the inner store's own count.
        assert_eq!(counting.gets(), snap.counter("seal.cache.misses"));
    }

    #[test]
    fn failed_fetch_shared_but_not_cached() {
        // Concurrent misses on a missing key share one NotFound; the error
        // is not cached, so a later write makes the key readable.
        let counting = Arc::new(CountingStore::new(30));
        let cached = Arc::new(CachedStore::new(counting.clone(), 1 << 20));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        crossbeam::scope(|s| {
            for _ in 0..8 {
                let (cached, barrier) = (cached.clone(), barrier.clone());
                s.spawn(move |_| {
                    barrier.wait();
                    assert!(cached.get("ghost").unwrap_err().is_not_found());
                });
            }
        })
        .unwrap();
        assert_eq!(counting.gets(), 1, "one shared failing fetch");
        cached.put("ghost", b"now real").unwrap();
        assert_eq!(cached.get("ghost").unwrap(), b"now real");
    }

    #[test]
    fn get_many_partitions_hits_and_misses() {
        let counting = Arc::new(CountingStore::new(0));
        for k in ["a", "b", "c", "d"] {
            counting.put(k, k.as_bytes()).unwrap();
        }
        let cached = CachedStore::new(counting.clone(), 1 << 20);
        cached.get("a").unwrap();
        cached.get("c").unwrap();
        let before = counting.gets();
        let results = cached.get_many(&["a", "b", "c", "d", "missing"]);
        assert_eq!(results[0].as_ref().unwrap(), b"a");
        assert_eq!(results[1].as_ref().unwrap(), b"b");
        assert_eq!(results[2].as_ref().unwrap(), b"c");
        assert_eq!(results[3].as_ref().unwrap(), b"d");
        assert!(results[4].as_ref().unwrap_err().is_not_found());
        // Only the three missing keys reach the inner store.
        assert_eq!(counting.gets() - before, 3);
        let stats = cached.stats();
        assert_eq!(stats.hits, 2); // a and c, warmed by the single gets
        assert_eq!(stats.misses, 5); // 2 warming gets + 3 batch leaders

        // The whole batch is now warm: a re-read touches the inner store
        // zero times.
        let warm = cached.get_many(&["a", "b", "c", "d"]);
        assert!(warm.iter().all(|r| r.is_ok()));
        assert_eq!(counting.gets() - before, 3);
    }

    #[test]
    fn get_many_deduplicates_repeated_keys() {
        let counting = Arc::new(CountingStore::new(0));
        counting.put("k", b"v").unwrap();
        let cached = CachedStore::new(counting.clone(), 1 << 20);
        let results = cached.get_many(&["k", "k", "k"]);
        assert!(results.iter().all(|r| r.as_ref().unwrap() == b"v"));
        assert_eq!(counting.gets(), 1, "repeated key fetched once per batch");
        assert_eq!(cached.stats().coalesced_waits, 2);
    }

    #[test]
    fn put_many_writes_through_successes_only() {
        let c = cached(1 << 20);
        let results = c.put_many(&[("a", b"alpha" as &[u8]), ("bad//key", b"x"), ("b", b"beta")]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        // Both stored payloads are warm; the failed key cached nothing.
        c.get("a").unwrap();
        c.get("b").unwrap();
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(s.resident_bytes, 9);
    }

    #[test]
    fn put_many_overwrite_never_serves_stale_bytes() {
        let c = cached(1 << 20);
        c.put("k", b"old-bytes").unwrap();
        assert_eq!(c.get("k").unwrap(), b"old-bytes");
        c.put_many(&[("k", b"new-bytes" as &[u8])]);
        assert_eq!(c.get("k").unwrap(), b"new-bytes", "write-through replaces the cached copy");
        assert_eq!(c.stats().misses, 0, "the fresh copy is served from cache, not refetched");
    }

    /// Inner store whose `get` captures the stored value, then parks until
    /// the test releases it — freezing a single-flight leader mid-fetch so
    /// a write can land deterministically inside the miss window.
    struct GateStore {
        inner: MemoryStore,
        entered: Mutex<bool>,
        entered_cv: Condvar,
        release: Mutex<bool>,
        release_cv: Condvar,
    }

    impl GateStore {
        fn new() -> Self {
            GateStore {
                inner: MemoryStore::new(),
                entered: Mutex::new(false),
                entered_cv: Condvar::new(),
                release: Mutex::new(false),
                release_cv: Condvar::new(),
            }
        }

        /// Block until a `get` has read its value and parked at the gate.
        fn wait_entered(&self) {
            let mut e = self.entered.lock();
            while !*e {
                e = self.entered_cv.wait(e);
            }
        }

        /// Open the gate, letting parked `get`s return their captured value.
        fn open(&self) {
            *self.release.lock() = true;
            self.release_cv.notify_all();
        }
    }

    impl ObjectStore for GateStore {
        fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
            self.inner.put(key, data)
        }

        fn get(&self, key: &str) -> Result<Vec<u8>> {
            let v = self.inner.get(key); // capture the pre-write value
            *self.entered.lock() = true;
            self.entered_cv.notify_all();
            let mut r = self.release.lock();
            while !*r {
                r = self.release_cv.wait(r);
            }
            drop(r);
            v
        }

        fn head(&self, key: &str) -> Result<ObjectMeta> {
            self.inner.head(key)
        }

        fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
            self.inner.list(prefix)
        }

        fn delete(&self, key: &str) -> Result<()> {
            self.inner.delete(key)
        }
    }

    #[test]
    fn miss_in_flight_during_write_never_caches_stale_bytes() {
        // Regression: a single-flight leader reads the old payload, then a
        // put_many write-through lands while that fetch is still in flight.
        // The leader's publish must NOT clobber the newer cached copy.
        let gate = Arc::new(GateStore::new());
        gate.put("k", b"old-bytes").unwrap();
        let cached = Arc::new(CachedStore::new(gate.clone(), 1 << 20));
        crossbeam::scope(|s| {
            let reader = {
                let cached = cached.clone();
                s.spawn(move |_| cached.get("k").unwrap())
            };
            gate.wait_entered(); // the leader holds the pre-write payload
            cached.put_many(&[("k", b"new-bytes" as &[u8])]);
            gate.open();
            // The racing read began before the write, so the old payload is
            // a linearizable result for it.
            assert_eq!(reader.join().unwrap(), b"old-bytes");
        })
        .unwrap();
        assert_eq!(
            cached.get("k").unwrap(),
            b"new-bytes",
            "publish of an in-flight fetch must not overwrite a newer write-through"
        );
        let s = cached.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1, "the fresh payload is served from cache, not refetched");
    }

    /// Inner store whose `put` completes the inner write, then parks while
    /// the payload matches `gate_value` — freezing a write-through between
    /// its inner write and its cache insert, so a second writer can
    /// deterministically overtake it at the cache lock.
    struct WriteGateStore {
        inner: MemoryStore,
        gate_value: Vec<u8>,
        entered: Mutex<bool>,
        entered_cv: Condvar,
        release: Mutex<bool>,
        release_cv: Condvar,
    }

    impl WriteGateStore {
        fn new(gate_value: &[u8]) -> Self {
            WriteGateStore {
                inner: MemoryStore::new(),
                gate_value: gate_value.to_vec(),
                entered: Mutex::new(false),
                entered_cv: Condvar::new(),
                release: Mutex::new(false),
                release_cv: Condvar::new(),
            }
        }

        fn wait_entered(&self) {
            let mut e = self.entered.lock();
            while !*e {
                e = self.entered_cv.wait(e);
            }
        }

        fn open(&self) {
            *self.release.lock() = true;
            self.release_cv.notify_all();
        }
    }

    impl ObjectStore for WriteGateStore {
        fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
            let meta = self.inner.put(key, data); // inner write completes first
            if data == self.gate_value.as_slice() {
                *self.entered.lock() = true;
                self.entered_cv.notify_all();
                let mut r = self.release.lock();
                while !*r {
                    r = self.release_cv.wait(r);
                }
            }
            meta
        }

        fn get(&self, key: &str) -> Result<Vec<u8>> {
            self.inner.get(key)
        }

        fn head(&self, key: &str) -> Result<ObjectMeta> {
            self.inner.head(key)
        }

        fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
            self.inner.list(prefix)
        }

        fn delete(&self, key: &str) -> Result<()> {
            self.inner.delete(key)
        }
    }

    #[test]
    fn racing_writers_converge_on_the_stored_payload() {
        // Regression (multi-tenant write/write): tenant A's inner write
        // completes first but A reaches the cache lock *after* tenant B's
        // complete put. Without modification-stamp ordering the cache
        // would keep A's stale payload forever while the store holds B's.
        let gate = Arc::new(WriteGateStore::new(b"v1"));
        let cached = Arc::new(CachedStore::new(gate.clone(), 1 << 20));
        crossbeam::scope(|s| {
            let a = {
                let cached = cached.clone();
                s.spawn(move |_| cached.put("k", b"v1").unwrap())
            };
            gate.wait_entered(); // A's inner write is durable, insert pending
            cached.put("k", b"v2").unwrap(); // B completes fully
            gate.open();
            a.join().unwrap();
        })
        .unwrap();
        assert_eq!(gate.get("k").unwrap(), b"v2", "the store kept the later write");
        assert_eq!(
            cached.get("k").unwrap(),
            b"v2",
            "an overtaken write-through must not clobber the newer cached payload"
        );
        assert_eq!(cached.stats().misses, 0, "the agreeing payload is served from cache");
    }

    #[test]
    fn two_tenants_miss_in_flight_while_a_third_writes() {
        // Two tenants miss on one key (leader + coalesced follower) while
        // a third tenant's put lands mid-flight. Both in-flight readers
        // began before the write, so the pre-write payload is linearizable
        // for them — but the cache must end up serving the new bytes.
        let gate = Arc::new(GateStore::new());
        gate.put("k", b"old-bytes").unwrap();
        let cached = Arc::new(CachedStore::new(gate.clone(), 1 << 20));
        crossbeam::scope(|s| {
            let r1 = {
                let cached = cached.clone();
                s.spawn(move |_| cached.get("k").unwrap())
            };
            gate.wait_entered(); // the leader holds the pre-write payload
            let r2 = {
                let cached = cached.clone();
                s.spawn(move |_| cached.get("k").unwrap())
            };
            // Give the second reader a moment to coalesce onto the flight
            // (if it instead arrives after the write it bypasses the
            // flight, which only changes which linearizable value it sees
            // — the lenient assert below covers both interleavings).
            std::thread::sleep(std::time::Duration::from_millis(20));
            cached.put("k", b"new-bytes").unwrap();
            gate.open();
            let (v1, v2) = (r1.join().unwrap(), r2.join().unwrap());
            assert_eq!(v1, b"old-bytes");
            assert!(v2 == b"old-bytes" || v2 == b"new-bytes");
        })
        .unwrap();
        assert_eq!(
            cached.get("k").unwrap(),
            b"new-bytes",
            "the write-through must survive both in-flight publishes"
        );
    }

    #[test]
    fn read_after_write_never_shares_a_pre_write_flight() {
        // Linearizability regression: a leader is mid-fetch when a write
        // lands whose payload is too large to write through (so the cache
        // holds nothing). A read that *starts after the acked write* must
        // not coalesce onto the stale flight and return pre-write bytes.
        let gate = Arc::new(GateStore::new());
        gate.put("k", &[1u8; 64]).unwrap();
        let cached = Arc::new(CachedStore::new(gate.clone(), 32)); // 64B objects never cached
        crossbeam::scope(|s| {
            let leader = {
                let cached = cached.clone();
                s.spawn(move |_| cached.get("k").unwrap())
            };
            gate.wait_entered(); // leader captured the pre-write payload
            cached.put("k", &[2u8; 64]).unwrap(); // acked write, not cacheable
            let late = {
                let cached = cached.clone();
                s.spawn(move |_| cached.get("k").unwrap())
            };
            // The late reader must bypass the stale flight and fetch the
            // new payload itself; it parks at the gate too, so open the
            // gate once it has arrived there.
            gate.wait_entered();
            gate.open();
            assert_eq!(leader.join().unwrap(), vec![1u8; 64], "pre-write read keeps old bytes");
            assert_eq!(
                late.join().unwrap(),
                vec![2u8; 64],
                "a read that began after the acked write must see the new bytes"
            );
        })
        .unwrap();
        assert!(cached.stats().stale_flight_bypasses >= 1);
    }

    #[test]
    fn cache_in_front_of_wan_cuts_virtual_time() {
        let clock = SimClock::new();
        let wan = Arc::new(CloudStore::new(
            Arc::new(MemoryStore::new()),
            NetworkProfile::public_dataverse(),
            clock.clone(),
            7,
        ));
        let cached = CachedStore::new(wan, 64 << 20);
        cached.put("block", &vec![1u8; 1 << 20]).unwrap();
        cached.clear();
        let t0 = clock.now_ns();
        cached.get("block").unwrap();
        let cold = clock.now_ns() - t0;
        let t1 = clock.now_ns();
        cached.get("block").unwrap();
        let warm = clock.now_ns() - t1;
        assert!(cold > 0);
        assert_eq!(warm, 0, "warm read must not touch the WAN");
    }
}
