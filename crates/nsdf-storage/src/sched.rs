//! Shared-WAN admission control: multiplexing a fleet of tenants over the
//! modeled cloud links on one virtual clock.
//!
//! The paper's NSDF services exist to serve *many* simultaneous trainees
//! over shared commercial-cloud links; this module is the fairness layer
//! that keeps that sharing civil. A [`WanScheduler`] owns the admission
//! decision for every wave a tenant submits against a modeled endpoint:
//!
//! * **Priority tiers** ([`Priority`]): interactive demand outranks
//!   speculative prefetch outranks bulk ingest. The fleet driver orders
//!   same-deadline events by tier, so an interactive pan never queues
//!   behind an ingest wave that arrived in the same instant.
//! * **Per-tenant token buckets** (bulk tier): each bulk tenant accrues
//!   *link-time* budget at `bulk_share * weight_i / Σ bulk weights` —
//!   a dimensionless share of the endpoint's virtual seconds. A wave is
//!   admitted only when the tenant has banked its estimated service time;
//!   otherwise the scheduler answers [`Admission::Defer`] with the exact
//!   virtual instant at which the budget suffices. Deferral happens
//!   *without* advancing the shared clock, which is precisely what keeps
//!   one bulk ingest from starving everyone else: the link stays free for
//!   interactive waves while the ingest waits out its own budget. Charging
//!   link-time rather than raw bytes makes the cap honest for RTT-dominated
//!   waves (many small blocks) and transfer-dominated waves alike.
//! * **Backpressure sheds speculation first**: a prefetch wave arriving
//!   when the link has already fallen `shed_lag_secs` behind that wave's
//!   intended deadline is answered [`Admission::Shed`]; the session's
//!   `CancelToken` deadline gives the same determinism to prefetches that
//!   slow down mid-flight.
//!
//! Accounting lives in [`SchedStore`], a per-tenant [`ObjectStore`] handle
//! layered *above* the shared cache stack: it measures each wave's actual
//! service time (virtual-clock delta) and actual WAN traffic (delta of the
//! endpoint's `wan.bytes_down`/`wan.bytes_up` counters), debits the token
//! bucket, and feeds the `sched.*` metric family. Fault-free, per-tier
//! `sched.<tier>.service_vns` therefore sums exactly to the endpoints'
//! `wan.busy_vns`, and per-tenant granted bytes sum exactly to the WAN
//! byte counters — invariants the fleet property suite pins down.
//!
//! The accounting assumes the fleet driver submits waves sequentially on
//! the virtual clock (the discrete-event loop in `nsdf-core::fleet` does);
//! concurrent wall-clock callers would attribute each other's clock
//! advances to whichever wave happened to be open.

use crate::store::{ObjectMeta, ObjectStore, Priority};
use crate::wan::NetworkProfile;
use nsdf_util::obs::{Counter, HistogramMetric, Obs};
use nsdf_util::{secs_to_ns, NsdfError, Result, SimClock};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Histogram bounds (virtual seconds) for per-tier queue delay.
const QUEUE_DELAY_BOUNDS: [f64; 10] = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0];

/// What a tenant declares about a wave when asking for admission.
///
/// The scheduler prices the wave with the endpoint's link model — the
/// same arithmetic the WAN simulator charges — so bulk token buckets are
/// debited in link-time, not bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeclaredWave {
    /// Number of objects in the wave (prices the round trips).
    pub ops: u32,
    /// Total payload bytes (prices the transfer time).
    pub bytes: u64,
    /// Writes pay the WAN's two round trips per batch.
    pub write: bool,
}

impl DeclaredWave {
    /// A read wave of `ops` objects totalling `bytes`.
    pub fn read(ops: u32, bytes: u64) -> Self {
        DeclaredWave { ops, bytes, write: false }
    }

    /// A write wave of `ops` objects totalling `bytes`.
    pub fn write(ops: u32, bytes: u64) -> Self {
        DeclaredWave { ops, bytes, write: true }
    }
}

/// The scheduler's answer to an admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the wave now.
    Admit,
    /// Token budget is short: re-ask at `retry_at_vns` (virtual ns). The
    /// shared clock is *not* advanced; the caller keeps the wave queued
    /// and the original deadline for latency accounting.
    Defer {
        /// Earliest virtual instant at which the budget will suffice.
        retry_at_vns: u64,
    },
    /// Backpressure: drop this speculative wave entirely.
    Shed,
}

/// Fairness knobs for the shared-WAN plane.
#[derive(Debug, Clone)]
pub struct SchedPolicy {
    /// Master switch. Off = pure FIFO admission (every wave admitted on
    /// arrival), which is the "demo, not a service" baseline the fleet
    /// bench contrasts against.
    pub qos: bool,
    /// Fraction of each endpoint's link time the bulk tier may consume in
    /// aggregate; tenant weights split it.
    pub bulk_share: f64,
    /// Token-bucket burst capacity, in virtual seconds of link time a
    /// bulk tenant may bank.
    pub bucket_burst_secs: f64,
    /// A prefetch wave already this many virtual seconds past its
    /// intended deadline is shed instead of admitted, and admitted
    /// prefetches carry a cancel deadline of the same length.
    pub shed_lag_secs: f64,
}

impl SchedPolicy {
    /// QoS enabled with the default shares.
    pub fn qos_on() -> Self {
        SchedPolicy { qos: true, bulk_share: 0.3, bucket_burst_secs: 1.0, shed_lag_secs: 0.5 }
    }

    /// Admission disabled: every wave admitted on arrival (FIFO).
    pub fn qos_off() -> Self {
        SchedPolicy { qos: false, ..SchedPolicy::qos_on() }
    }
}

/// Per-endpoint link model plus the WAN byte counters used to attribute
/// actual traffic back to tenants.
struct LinkState {
    rtt_secs: f64,
    bytes_per_sec: f64,
    streams: u32,
    wan_down: Counter,
    wan_up: Counter,
}

impl LinkState {
    /// Estimated service time of `wave` in virtual seconds — the same
    /// pricing the WAN simulator will charge, minus jitter.
    fn estimate_secs(&self, wave: &DeclaredWave) -> f64 {
        if wave.ops == 0 && wave.bytes == 0 {
            return 0.0;
        }
        let per_batch = wave.ops.max(1).div_ceil(self.streams.max(1));
        let trips = if wave.write { 2 * per_batch } else { per_batch };
        self.rtt_secs * trips as f64 + wave.bytes as f64 / self.bytes_per_sec
    }
}

/// Per-tenant scheduling state: registered tier, fair-share weight, and
/// the bulk token bucket (in virtual ns of link time).
struct TenantState {
    tier: Priority,
    weight: u64,
    /// Whether this tenant's weight is counted in the bulk denominator.
    bulk_active: bool,
    budget_vns: f64,
    last_refill_vns: u64,
    /// Lowest bucket level ever observed (post-debit); the property suite
    /// asserts it never goes negative.
    min_budget_vns: f64,
    granted_bytes: u64,
}

impl TenantState {
    fn new(tier: Priority, weight: u64) -> Self {
        TenantState {
            tier,
            weight,
            bulk_active: tier == Priority::Bulk,
            budget_vns: 0.0,
            last_refill_vns: 0,
            min_budget_vns: 0.0,
            granted_bytes: 0,
        }
    }
}

struct SchedState {
    links: BTreeMap<String, LinkState>,
    tenants: BTreeMap<String, TenantState>,
    /// Σ weights of bulk-active tenants — the fair-share denominator.
    bulk_weight_total: u64,
}

/// One tier's metric handles under the `sched.<tier>.*` scope.
struct TierMetrics {
    submitted: Counter,
    admitted: Counter,
    deferred: Counter,
    shed: Counter,
    waves: Counter,
    service_vns: Counter,
    queue_delay_vns: Counter,
    granted_bytes: Counter,
    queue_delay: HistogramMetric,
}

impl TierMetrics {
    fn new(obs: &Obs, tier: Priority) -> Self {
        let t = obs.scoped(tier.name());
        TierMetrics {
            submitted: t.counter("waves_submitted"),
            admitted: t.counter("waves_admitted"),
            deferred: t.counter("waves_deferred"),
            shed: t.counter("waves_shed"),
            waves: t.counter("waves"),
            service_vns: t.counter("service_vns"),
            queue_delay_vns: t.counter("queue_delay_vns"),
            granted_bytes: t.counter("granted_bytes"),
            queue_delay: t.histogram("queue_delay_secs", &QUEUE_DELAY_BOUNDS),
        }
    }
}

struct SchedMetrics {
    tiers: [TierMetrics; 3],
    submitted: Counter,
    admitted: Counter,
    deferred: Counter,
    shed: Counter,
    waves: Counter,
    service_vns: Counter,
    queue_delay_vns: Counter,
    granted_bytes: Counter,
}

impl SchedMetrics {
    fn new(obs: &Obs) -> Self {
        let s = obs.scoped("sched");
        SchedMetrics {
            tiers: [
                TierMetrics::new(&s, Priority::Interactive),
                TierMetrics::new(&s, Priority::Prefetch),
                TierMetrics::new(&s, Priority::Bulk),
            ],
            submitted: s.counter("waves_submitted"),
            admitted: s.counter("waves_admitted"),
            deferred: s.counter("waves_deferred"),
            shed: s.counter("waves_shed"),
            waves: s.counter("waves"),
            service_vns: s.counter("service_vns"),
            queue_delay_vns: s.counter("queue_delay_vns"),
            granted_bytes: s.counter("granted_bytes"),
        }
    }

    fn tier(&self, tier: Priority) -> &TierMetrics {
        &self.tiers[tier.rank() as usize]
    }
}

/// The shared-WAN admission layer: one instance per simulated fleet,
/// shared by every tenant's [`SchedStore`] handle.
pub struct WanScheduler {
    clock: SimClock,
    policy: SchedPolicy,
    state: Mutex<SchedState>,
    m: SchedMetrics,
}

impl WanScheduler {
    /// New scheduler on `clock` with `policy`. Metrics land in a private
    /// registry until [`WanScheduler::with_obs`] is called.
    pub fn new(clock: SimClock, policy: SchedPolicy) -> Self {
        let obs = Obs::new(clock.clone());
        WanScheduler {
            clock,
            policy,
            state: Mutex::new(SchedState {
                links: BTreeMap::new(),
                tenants: BTreeMap::new(),
                bulk_weight_total: 0,
            }),
            m: SchedMetrics::new(&obs),
        }
    }

    /// Route `sched.*` metrics into `obs`.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.m = SchedMetrics::new(obs);
        self
    }

    /// The policy this scheduler enforces.
    pub fn policy(&self) -> &SchedPolicy {
        &self.policy
    }

    /// The virtual clock every admission decision reads.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Register a modeled endpoint. `ep_obs` must be the same scoped
    /// registry the endpoint's `CloudStore` reports into — the scheduler
    /// reads its `wan.bytes_down`/`wan.bytes_up` counters to attribute
    /// actual traffic to tenants.
    pub fn register_endpoint(&self, name: &str, profile: &NetworkProfile, ep_obs: &Obs) {
        let link = LinkState {
            rtt_secs: profile.rtt_ms / 1000.0,
            bytes_per_sec: profile.bandwidth_mbps * 1e6 / 8.0 * profile.streams.max(1) as f64,
            streams: profile.streams,
            wan_down: ep_obs.counter("wan.bytes_down"),
            wan_up: ep_obs.counter("wan.bytes_up"),
        };
        self.state.lock().links.insert(name.to_string(), link);
    }

    /// Register a tenant with its default tier and fair-share weight.
    /// Bulk-tier weights form the denominator of the bulk link share.
    pub fn register_tenant(&self, tenant: &str, tier: Priority, weight: u64) {
        let mut st = self.state.lock();
        if st.tenants.contains_key(tenant) {
            return;
        }
        let t = TenantState::new(tier, weight.max(1));
        if t.bulk_active {
            st.bulk_weight_total += t.weight;
        }
        st.tenants.insert(tenant.to_string(), t);
    }

    /// Ask to run a wave for `tenant` against `endpoint` at tier `tier`.
    ///
    /// `due_vns` is the wave's *intended* virtual deadline (its arrival
    /// time for open-loop traffic); the gap to the current clock is the
    /// queue delay recorded on admission and the lag prefetch shedding
    /// keys off. Deferral never advances the clock.
    pub fn admit(
        &self,
        endpoint: &str,
        tenant: &str,
        tier: Priority,
        wave: &DeclaredWave,
        due_vns: u64,
    ) -> Admission {
        let now = self.clock.now_ns();
        let delay = now.saturating_sub(due_vns);
        self.m.tier(tier).submitted.inc();
        self.m.submitted.inc();
        if !self.policy.qos {
            return self.admitted(tier, delay);
        }
        match tier {
            Priority::Interactive => self.admitted(tier, delay),
            Priority::Prefetch => {
                if delay > secs_to_ns(self.policy.shed_lag_secs) {
                    self.m.tier(tier).shed.inc();
                    self.m.shed.inc();
                    Admission::Shed
                } else {
                    self.admitted(tier, delay)
                }
            }
            Priority::Bulk => {
                let mut st = self.state.lock();
                let est_vns = match st.links.get(endpoint) {
                    Some(link) => link.estimate_secs(wave) * 1e9,
                    // Unmodeled endpoint: nothing to price, admit.
                    None => {
                        drop(st);
                        return self.admitted(tier, delay);
                    }
                };
                if !st.tenants.contains_key(tenant) {
                    st.tenants.insert(tenant.to_string(), TenantState::new(tier, 1));
                }
                // A tenant that was not registered as bulk but submits a
                // bulk wave joins the fair-share denominator on first use.
                let was_active = st.tenants[tenant].bulk_active;
                if !was_active {
                    let w = st.tenants[tenant].weight;
                    st.bulk_weight_total += w;
                    st.tenants.get_mut(tenant).expect("tenant just ensured").bulk_active = true;
                }
                let denom = st.bulk_weight_total.max(1);
                let t = st.tenants.get_mut(tenant).expect("tenant just ensured");
                let rate = self.policy.bulk_share * t.weight as f64 / denom as f64;
                let capacity = secs_to_ns(self.policy.bucket_burst_secs) as f64;
                refill(t, rate, now, capacity);
                let need = est_vns.min(capacity.max(1.0));
                if t.budget_vns + 1e-6 >= need {
                    drop(st);
                    self.admitted(tier, delay)
                } else {
                    let deficit = need - t.budget_vns;
                    let wait_vns = (deficit / rate.max(1e-12)).ceil() as u64;
                    drop(st);
                    self.m.tier(tier).deferred.inc();
                    self.m.deferred.inc();
                    Admission::Defer { retry_at_vns: now + wait_vns.max(1) }
                }
            }
        }
    }

    fn admitted(&self, tier: Priority, delay_vns: u64) -> Admission {
        let tm = self.m.tier(tier);
        tm.admitted.inc();
        tm.queue_delay_vns.add(delay_vns);
        tm.queue_delay.observe(delay_vns as f64 / 1e9);
        self.m.admitted.inc();
        self.m.queue_delay_vns.add(delay_vns);
        Admission::Admit
    }

    /// Record a finished wave: `service_vns` of link time consumed and
    /// `bytes` of actual WAN traffic, attributed to `tenant` at `tier`.
    /// Bulk waves debit the tenant's token bucket, clamped at zero.
    /// Called by [`SchedStore`] around every store operation.
    pub fn wave_done(&self, tenant: &str, tier: Priority, service_vns: u64, bytes: u64) {
        let tm = self.m.tier(tier);
        tm.waves.inc();
        tm.service_vns.add(service_vns);
        tm.granted_bytes.add(bytes);
        self.m.waves.inc();
        self.m.service_vns.add(service_vns);
        self.m.granted_bytes.add(bytes);
        let mut st = self.state.lock();
        let t = st.tenants.entry(tenant.to_string()).or_insert_with(|| TenantState::new(tier, 1));
        t.granted_bytes += bytes;
        if tier == Priority::Bulk && self.policy.qos {
            t.budget_vns = (t.budget_vns - service_vns as f64).max(0.0);
            t.min_budget_vns = t.min_budget_vns.min(t.budget_vns);
        }
    }

    /// Actual WAN bytes granted to each tenant so far. Fault-free or not,
    /// these sum exactly to the endpoints' `wan.bytes_down + wan.bytes_up`
    /// when all traffic flows through [`SchedStore`] handles.
    pub fn tenant_grants(&self) -> BTreeMap<String, u64> {
        self.state.lock().tenants.iter().map(|(k, t)| (k.clone(), t.granted_bytes)).collect()
    }

    /// Lowest token-bucket level (virtual ns) ever observed across all
    /// tenants; ≥ 0 by construction, asserted by the property suite.
    pub fn min_bucket_vns(&self) -> f64 {
        self.state.lock().tenants.values().map(|t| t.min_budget_vns).fold(0.0f64, |a, b| {
            if b < a {
                b
            } else {
                a
            }
        })
    }

    /// A per-tenant store handle over `inner` (typically the endpoint's
    /// shared cache stack) that accounts every wave against this
    /// scheduler. The endpoint must have been registered.
    pub fn tenant_store(
        self: &Arc<Self>,
        endpoint: &str,
        tenant: &str,
        inner: Arc<dyn ObjectStore>,
    ) -> Result<Arc<SchedStore>> {
        let st = self.state.lock();
        let link = st
            .links
            .get(endpoint)
            .ok_or_else(|| NsdfError::invalid(format!("endpoint {endpoint:?} not registered")))?;
        let (wan_down, wan_up) = (link.wan_down.clone(), link.wan_up.clone());
        let tier = st.tenants.get(tenant).map(|t| t.tier).unwrap_or(Priority::Interactive);
        drop(st);
        Ok(Arc::new(SchedStore {
            inner,
            sched: Arc::clone(self),
            tenant: tenant.to_string(),
            tier: AtomicU8::new(tier.rank()),
            wan_down,
            wan_up,
        }))
    }
}

/// Refill a tenant's bucket at `rate` (link-seconds per virtual second)
/// up to `now`, capped at the burst capacity.
fn refill(t: &mut TenantState, rate: f64, now: u64, capacity_vns: f64) {
    if now > t.last_refill_vns {
        t.budget_vns = (t.budget_vns + rate * (now - t.last_refill_vns) as f64).min(capacity_vns);
    }
    t.last_refill_vns = now;
}

fn tier_from_rank(rank: u8) -> Priority {
    match rank {
        0 => Priority::Interactive,
        1 => Priority::Prefetch,
        _ => Priority::Bulk,
    }
}

/// Per-tenant scheduler-aware store handle.
///
/// Sits *above* the endpoint's shared cache stack, so cache hits cost a
/// tenant nothing while misses are attributed to whoever triggered them.
/// Every operation measures its virtual service time and the actual WAN
/// bytes it caused (delta of the endpoint's WAN counters) and reports
/// them via [`WanScheduler::wave_done`] under the handle's current
/// [`Priority`] tag.
pub struct SchedStore {
    inner: Arc<dyn ObjectStore>,
    sched: Arc<WanScheduler>,
    tenant: String,
    tier: AtomicU8,
    wan_down: Counter,
    wan_up: Counter,
}

impl SchedStore {
    /// The tenant this handle belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The tier the next wave will be accounted under.
    pub fn current_priority(&self) -> Priority {
        tier_from_rank(self.tier.load(Ordering::Relaxed))
    }

    fn accounted<R>(&self, f: impl FnOnce(&dyn ObjectStore) -> R) -> R {
        let tier = self.current_priority();
        let v0 = self.sched.clock.now_ns();
        let b0 = self.wan_down.get() + self.wan_up.get();
        let out = f(self.inner.as_ref());
        let service = self.sched.clock.now_ns().saturating_sub(v0);
        let bytes = (self.wan_down.get() + self.wan_up.get()).saturating_sub(b0);
        self.sched.wave_done(&self.tenant, tier, service, bytes);
        out
    }
}

impl ObjectStore for SchedStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<ObjectMeta> {
        self.accounted(|s| s.put(key, data))
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.accounted(|s| s.get(key))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.accounted(|s| s.get_range(key, offset, len))
    }

    fn get_many(&self, keys: &[&str]) -> Vec<Result<Vec<u8>>> {
        self.accounted(|s| s.get_many(keys))
    }

    fn put_many(&self, items: &[(&str, &[u8])]) -> Vec<Result<ObjectMeta>> {
        self.accounted(|s| s.put_many(items))
    }

    fn head(&self, key: &str) -> Result<ObjectMeta> {
        self.accounted(|s| s.head(key))
    }

    fn head_many(&self, keys: &[&str]) -> Vec<Result<ObjectMeta>> {
        self.accounted(|s| s.head_many(keys))
    }

    fn list(&self, prefix: &str) -> Result<Vec<ObjectMeta>> {
        self.accounted(|s| s.list(prefix))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.accounted(|s| s.delete(key))
    }

    fn describe(&self) -> String {
        format!("sched[{}] over {}", self.tenant, self.inner.describe())
    }

    fn set_wave_priority(&self, priority: Priority) {
        self.tier.store(priority.rank(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use crate::wan::CloudStore;

    fn scheduler(policy: SchedPolicy) -> (SimClock, Obs, Arc<WanScheduler>) {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let sched = Arc::new(WanScheduler::new(clock.clone(), policy).with_obs(&obs));
        (clock, obs, sched)
    }

    #[test]
    fn qos_off_admits_everything() {
        let (_clock, obs, sched) = scheduler(SchedPolicy::qos_off());
        sched.register_endpoint("ep", &NetworkProfile::public_dataverse(), &obs.scoped("ep"));
        sched.register_tenant("t0", Priority::Bulk, 1);
        for _ in 0..50 {
            let a = sched.admit("ep", "t0", Priority::Bulk, &DeclaredWave::write(32, 32 << 20), 0);
            assert_eq!(a, Admission::Admit);
        }
    }

    #[test]
    fn bulk_waves_defer_until_budget_accrues() {
        let (clock, obs, sched) = scheduler(SchedPolicy::qos_on());
        sched.register_endpoint("ep", &NetworkProfile::public_dataverse(), &obs.scoped("ep"));
        sched.register_tenant("ingest", Priority::Bulk, 1);
        let wave = DeclaredWave::write(8, 8 << 20);
        // Bank some budget first, then drain it.
        clock.advance_secs(10.0);
        let now = clock.now_ns();
        assert_eq!(sched.admit("ep", "ingest", Priority::Bulk, &wave, now), Admission::Admit);
        // Pretend the wave consumed a big slab of link time.
        sched.wave_done("ingest", Priority::Bulk, secs_to_ns(5.0), 8 << 20);
        match sched.admit("ep", "ingest", Priority::Bulk, &wave, now) {
            Admission::Defer { retry_at_vns } => {
                assert!(retry_at_vns > clock.now_ns());
                // At the promised instant the budget suffices.
                clock.advance_to_ns(retry_at_vns);
                assert_eq!(
                    sched.admit("ep", "ingest", Priority::Bulk, &wave, now),
                    Admission::Admit
                );
            }
            other => panic!("expected deferral, got {other:?}"),
        }
        assert!(sched.min_bucket_vns() >= 0.0);
    }

    #[test]
    fn prefetch_sheds_when_lagging() {
        let (clock, obs, sched) = scheduler(SchedPolicy::qos_on());
        sched.register_endpoint("ep", &NetworkProfile::private_seal(), &obs.scoped("ep"));
        sched.register_tenant("viewer", Priority::Interactive, 1);
        let wave = DeclaredWave::read(4, 4096);
        let due = clock.now_ns();
        assert_eq!(sched.admit("ep", "viewer", Priority::Prefetch, &wave, due), Admission::Admit);
        clock.advance_secs(2.0); // link fell far behind the intended time
        assert_eq!(sched.admit("ep", "viewer", Priority::Prefetch, &wave, due), Admission::Shed);
        // Interactive demand is never shed, no matter the lag.
        assert_eq!(
            sched.admit("ep", "viewer", Priority::Interactive, &wave, due),
            Admission::Admit
        );
        let snap = obs.snapshot();
        assert_eq!(snap.counter("sched.prefetch.waves_shed"), 1);
        assert_eq!(snap.counter("sched.waves_shed"), 1);
    }

    #[test]
    fn sched_store_reconciles_with_wan_counters() {
        let (clock, obs, sched) = scheduler(SchedPolicy::qos_on());
        let ep_obs = obs.scoped("ep");
        let profile = NetworkProfile::public_dataverse();
        sched.register_endpoint("ep", &profile, &ep_obs);
        sched.register_tenant("a", Priority::Interactive, 1);
        sched.register_tenant("b", Priority::Bulk, 1);
        let wan = Arc::new(
            CloudStore::new(Arc::new(MemoryStore::new()), profile, clock.clone(), 7)
                .with_obs(&ep_obs),
        );
        let sa = sched.tenant_store("ep", "a", wan.clone()).unwrap();
        let sb = sched.tenant_store("ep", "b", wan).unwrap();
        sb.put("shared/x", &[7u8; 4096]).unwrap();
        assert_eq!(sa.get("shared/x").unwrap(), vec![7u8; 4096]);
        sa.set_wave_priority(Priority::Prefetch);
        assert_eq!(sa.get("shared/x").unwrap(), vec![7u8; 4096]);
        let snap = obs.snapshot();
        let wan_busy = snap.counter("ep.wan.busy_vns");
        let wan_bytes = snap.counter("ep.wan.bytes_down") + snap.counter("ep.wan.bytes_up");
        assert_eq!(snap.counter("sched.service_vns"), wan_busy);
        assert_eq!(snap.counter("sched.granted_bytes"), wan_bytes);
        let grants = sched.tenant_grants();
        assert_eq!(grants.values().sum::<u64>(), wan_bytes);
        assert!(grants["a"] > 0 && grants["b"] > 0);
        // The prefetch-tagged wave landed in the prefetch tier.
        assert_eq!(snap.counter("sched.prefetch.waves"), 1);
        assert!(snap.counter("sched.prefetch.granted_bytes") >= 4096);
    }

    #[test]
    fn unregistered_endpoint_admits_bulk() {
        let (clock, _obs, sched) = scheduler(SchedPolicy::qos_on());
        let a = sched.admit("ghost", "t", Priority::Bulk, &DeclaredWave::write(8, 1 << 20), 0);
        assert_eq!(a, Admission::Admit);
        let _ = clock;
    }
}
