//! Soil-moisture downscaling: the SOMOSPIE use case (paper §I, ref \[8\]).
//!
//! SOMOSPIE predicts fine-resolution soil moisture from coarse satellite
//! retrievals (ESA-CCI class, ~27 km) using terrain parameters as
//! predictors. Real retrievals are gated data; `SyntheticTruth` builds a
//! fine-resolution "true" moisture field as a physically plausible function
//! of terrain (wetter in valleys and on gentle north-facing slopes, plus
//! correlated noise), degrades it to a coarse grid like the satellite
//! would, and the downscaler must reconstruct the fine field from terrain
//! predictors — the exact inference task, with the bonus that ground truth
//! is known everywhere so accuracy is measurable.

use crate::knn::KnnRegressor;
use nsdf_geotiled::{compute_terrain, Sun, TerrainParam};
use nsdf_util::{derive_seed, NsdfError, Raster, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feature vector at one cell: (x, y, elevation, slope, aspect-northness).
fn features(
    x: usize,
    y: usize,
    elev: &Raster<f32>,
    slope: &Raster<f32>,
    aspect: &Raster<f32>,
) -> Vec<f64> {
    let a = aspect.get(x, y) as f64;
    // Encode aspect as "northness" so the circular variable is continuous;
    // flat cells (-1) get 0.
    let northness = if a < 0.0 { 0.0 } else { a.to_radians().cos() };
    vec![x as f64, y as f64, elev.get(x, y) as f64, slope.get(x, y) as f64, northness]
}

/// Ground truth generator and its derived products.
#[derive(Debug)]
pub struct SyntheticTruth {
    /// Fine-resolution "true" volumetric soil moisture in `[0, 0.5]`.
    pub fine_truth: Raster<f32>,
    /// Terrain predictors at fine resolution.
    pub elevation: Raster<f32>,
    /// Slope (degrees).
    pub slope: Raster<f32>,
    /// Aspect (degrees, -1 flat).
    pub aspect: Raster<f32>,
    /// Coarse satellite-like observation (block means of the truth).
    pub coarse_obs: Raster<f32>,
    /// Coarsening factor between truth and observation grids.
    pub factor: u32,
}

impl SyntheticTruth {
    /// Build truth + observations from a DEM.
    ///
    /// `factor` is the resolution gap (ESA-CCI over 30 m terrain would be
    /// ~900; tests use small factors for speed — the geometry is the same).
    pub fn from_dem(dem: &Raster<f32>, factor: u32, seed: u64) -> Result<SyntheticTruth> {
        if factor < 2 {
            return Err(NsdfError::invalid("coarsening factor must be >= 2"));
        }
        let (w, h) = dem.shape();
        if (w as u32) < factor || (h as u32) < factor {
            return Err(NsdfError::invalid("DEM smaller than one coarse cell"));
        }
        let elevation = dem.clone();
        let slope = compute_terrain(dem, TerrainParam::Slope, Sun::default())?;
        let aspect = compute_terrain(dem, TerrainParam::Aspect, Sun::default())?;
        let (lo, hi) = elevation.min_max().ok_or_else(|| NsdfError::invalid("empty DEM"))?;
        let span = (hi - lo).max(1e-9);

        let mut rng = StdRng::seed_from_u64(derive_seed(seed, "moisture-noise"));
        let mut noise_field = Raster::<f32>::zeros(w, h);
        for v in noise_field.data_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        // Smooth the noise so it is spatially correlated like real residuals.
        let noise = noise_field.downsample_mean(4).resize_bilinear(w, h);

        let fine_truth = Raster::from_fn(w, h, |x, y| {
            let rel_elev = (elevation.get(x, y) as f64 - lo) / span; // 0 valley .. 1 peak
            let s = slope.get(x, y) as f64;
            let a = aspect.get(x, y) as f64;
            let northness = if a < 0.0 { 0.0 } else { a.to_radians().cos() };
            // Valleys hold water; steep slopes drain (effect saturating at
            // 45°); north faces stay moist.
            let m = 0.35 - 0.20 * rel_elev - 0.06 * (s / 45.0).min(1.0)
                + 0.03 * northness
                + 0.02 * noise.get(x, y) as f64;
            m.clamp(0.02, 0.5) as f32
        });
        let coarse_obs = fine_truth.downsample_mean(factor);
        Ok(SyntheticTruth { fine_truth, elevation, slope, aspect, coarse_obs, factor })
    }
}

/// Result of one downscaling run.
#[derive(Debug, Clone, PartialEq)]
pub struct DownscaleReport {
    /// Predicted fine-resolution moisture.
    pub predicted: Raster<f32>,
    /// RMSE of the prediction against the withheld fine truth.
    pub rmse: f64,
    /// RMSE of the naive baseline (bilinear upsampling of the coarse
    /// observation) against the same truth.
    pub baseline_rmse: f64,
    /// Training points used.
    pub train_points: usize,
}

/// SOMOSPIE-style downscaling: train KNN on coarse observations located at
/// coarse-cell centres with fine-grid terrain features, then predict every
/// fine cell.
pub fn downscale_knn(truth: &SyntheticTruth, k: usize) -> Result<DownscaleReport> {
    let (w, h) = truth.fine_truth.shape();
    let f = truth.factor as usize;

    // Training set: one sample per coarse cell, features taken at the
    // fine-grid centre of that cell.
    let mut train = Vec::new();
    for cy in 0..truth.coarse_obs.height() {
        for cx in 0..truth.coarse_obs.width() {
            let x = (cx * f + f / 2).min(w - 1);
            let y = (cy * f + f / 2).min(h - 1);
            train.push((
                features(x, y, &truth.elevation, &truth.slope, &truth.aspect),
                truth.coarse_obs.get(cx, cy) as f64,
            ));
        }
    }
    let model = KnnRegressor::fit(&train)?;

    let predicted = Raster::from_fn(w, h, |x, y| {
        model
            .predict(&features(x, y, &truth.elevation, &truth.slope, &truth.aspect), k)
            .expect("feature dims are consistent") as f32
    });

    let rmse = rmse_between(&predicted, &truth.fine_truth);
    let baseline = truth.coarse_obs.resize_bilinear(w, h);
    let baseline_rmse = rmse_between(&baseline, &truth.fine_truth);
    Ok(DownscaleReport { predicted, rmse, baseline_rmse, train_points: train.len() })
}

fn rmse_between(a: &Raster<f32>, b: &Raster<f32>) -> f64 {
    let ss: f64 = a.data().iter().zip(b.data()).map(|(x, y)| (*x as f64 - *y as f64).powi(2)).sum();
    (ss / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsdf_geotiled::DemConfig;

    fn truth() -> SyntheticTruth {
        let dem = DemConfig::conus_like(96, 96, 17).generate();
        SyntheticTruth::from_dem(&dem, 8, 17).unwrap()
    }

    #[test]
    fn truth_is_physical() {
        let t = truth();
        let (lo, hi) = t.fine_truth.min_max().unwrap();
        // f32 rounding can land a hair below the f64 clamp bound.
        assert!(lo >= 0.0199 && hi <= 0.5001, "range [{lo}, {hi}]");
        assert_eq!(t.coarse_obs.shape(), (12, 12));
        // Moisture anti-correlates with elevation: compare low vs high cells.
        let mut low_m = vec![];
        let mut high_m = vec![];
        let (elo, ehi) = t.elevation.min_max().unwrap();
        for (x, y, e) in t.elevation.iter_cells() {
            let rel = (e as f64 - elo) / (ehi - elo);
            if rel < 0.2 {
                low_m.push(t.fine_truth.get(x, y) as f64);
            } else if rel > 0.8 {
                high_m.push(t.fine_truth.get(x, y) as f64);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&low_m) > mean(&high_m) + 0.05);
    }

    #[test]
    fn truth_is_deterministic() {
        let a = truth();
        let b = truth();
        assert_eq!(a.fine_truth.data(), b.fine_truth.data());
    }

    #[test]
    fn knn_downscaling_beats_bilinear_baseline() {
        let t = truth();
        let report = downscale_knn(&t, 5).unwrap();
        assert!(
            report.rmse < report.baseline_rmse,
            "knn {} vs baseline {}",
            report.rmse,
            report.baseline_rmse
        );
        assert!(report.rmse < 0.05, "rmse {}", report.rmse);
        assert_eq!(report.train_points, 144);
        assert_eq!(report.predicted.shape(), t.fine_truth.shape());
    }

    #[test]
    fn predictions_stay_in_physical_range() {
        let t = truth();
        let report = downscale_knn(&t, 3).unwrap();
        let (lo, hi) = report.predicted.min_max().unwrap();
        assert!(lo >= 0.0 && hi <= 0.55, "range [{lo}, {hi}]");
    }

    #[test]
    fn validation_errors() {
        let dem = DemConfig::conus_like(16, 16, 1).generate();
        assert!(SyntheticTruth::from_dem(&dem, 1, 1).is_err());
        assert!(SyntheticTruth::from_dem(&dem, 32, 1).is_err());
    }
}
