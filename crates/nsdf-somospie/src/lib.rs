//! # nsdf-somospie
//!
//! SOMOSPIE-class soil-moisture spatial inference (paper §I, ref \[8\]): a
//! KNN regressor over terrain predictors and a downscaling pipeline that
//! reconstructs fine-resolution moisture from coarse satellite-like
//! observations, with a synthetic-truth generator replacing the gated
//! ESA-CCI retrievals (substitution documented in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod knn;
pub mod moisture;
pub mod validate;

pub use knn::KnnRegressor;
pub use moisture::{downscale_knn, DownscaleReport, SyntheticTruth};
pub use validate::{select_k, CvReport};
