//! K-nearest-neighbour regression — the model family SOMOSPIE's published
//! pipeline uses for soil-moisture spatial inference (paper ref \[8\]).
//!
//! Brute-force neighbour search with per-query selection; at the grid
//! sizes the examples and benches run (10³–10⁵ training points) this is
//! faster than building spatial structures and keeps the crate dependency-
//! free. Features are standardised internally so elevation (thousands of
//! metres) does not drown slope (tens of degrees).

use nsdf_util::{NsdfError, Result};

/// A fitted KNN regressor.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    dims: usize,
    /// Standardised training features, row-major.
    features: Vec<f64>,
    targets: Vec<f64>,
    /// Per-dimension mean of the raw training features.
    means: Vec<f64>,
    /// Per-dimension standard deviation (>= tiny epsilon).
    stds: Vec<f64>,
}

impl KnnRegressor {
    /// Fit on `points` of `(feature_vector, target)` pairs. All feature
    /// vectors must share a length.
    pub fn fit(points: &[(Vec<f64>, f64)]) -> Result<KnnRegressor> {
        let Some(first) = points.first() else {
            return Err(NsdfError::invalid("KNN needs at least one training point"));
        };
        let dims = first.0.len();
        if dims == 0 {
            return Err(NsdfError::invalid("KNN features must be non-empty"));
        }
        if points.iter().any(|(f, _)| f.len() != dims) {
            return Err(NsdfError::invalid("inconsistent feature dimensionality"));
        }
        let n = points.len();
        let mut means = vec![0.0; dims];
        for (f, _) in points {
            for (m, v) in means.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0; dims];
        for (f, _) in points {
            for d in 0..dims {
                stds[d] += (f[d] - means[d]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt().max(1e-12);
        }
        let mut features = Vec::with_capacity(n * dims);
        let mut targets = Vec::with_capacity(n);
        for (f, t) in points {
            for d in 0..dims {
                features.push((f[d] - means[d]) / stds[d]);
            }
            targets.push(*t);
        }
        Ok(KnnRegressor { dims, features, targets, means, stds })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the model holds no training data (never constructible).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Predict at `x` using the `k` nearest training points, weighted by
    /// inverse distance (an exact neighbour dominates).
    pub fn predict(&self, x: &[f64], k: usize) -> Result<f64> {
        if x.len() != self.dims {
            return Err(NsdfError::invalid(format!(
                "query has {} dims, model has {}",
                x.len(),
                self.dims
            )));
        }
        if k == 0 {
            return Err(NsdfError::invalid("k must be positive"));
        }
        let k = k.min(self.len());
        let xs: Vec<f64> = (0..self.dims).map(|d| (x[d] - self.means[d]) / self.stds[d]).collect();

        // Collect (distance^2, target) and select the k smallest.
        let mut dists: Vec<(f64, f64)> = self
            .features
            .chunks_exact(self.dims)
            .zip(&self.targets)
            .map(|(f, &t)| {
                let d2: f64 = f.iter().zip(&xs).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, t)
            })
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbours = &dists[..k];

        // Exact hit short-circuits; else inverse-distance weights.
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d2, t) in neighbours {
            if d2 <= 1e-24 {
                return Ok(t);
            }
            let w = 1.0 / d2.sqrt();
            wsum += w;
            acc += w * t;
        }
        Ok(acc / wsum)
    }

    /// Mean prediction error over a labelled evaluation set.
    pub fn rmse_on(&self, eval: &[(Vec<f64>, f64)], k: usize) -> Result<f64> {
        if eval.is_empty() {
            return Err(NsdfError::invalid("empty evaluation set"));
        }
        let mut ss = 0.0;
        for (f, t) in eval {
            let p = self.predict(f, k)?;
            ss += (p - t) * (p - t);
        }
        Ok((ss / eval.len() as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(f: impl Fn(f64, f64) -> f64) -> Vec<(Vec<f64>, f64)> {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64, j as f64);
                pts.push((vec![x, y], f(x, y)));
            }
        }
        pts
    }

    #[test]
    fn exact_training_points_reproduced_with_k1() {
        let pts = grid_points(|x, y| x * 2.0 + y);
        let m = KnnRegressor::fit(&pts).unwrap();
        for (f, t) in pts.iter().step_by(37) {
            assert_eq!(m.predict(f, 1).unwrap(), *t);
        }
    }

    #[test]
    fn interpolates_smooth_fields() {
        let pts = grid_points(|x, y| (x * 0.3).sin() + (y * 0.2).cos());
        let m = KnnRegressor::fit(&pts).unwrap();
        let truth = (7.5f64 * 0.3).sin() + (3.5f64 * 0.2).cos();
        let pred = m.predict(&[7.5, 3.5], 4).unwrap();
        assert!((pred - truth).abs() < 0.1, "pred {pred} truth {truth}");
    }

    #[test]
    fn standardisation_balances_scales() {
        // Same information in both dims, but dim 0 is scaled by 1e6; an
        // unstandardised KNN would ignore dim 1 (harmless here) — verify
        // predictions remain sane when querying between points.
        let pts: Vec<(Vec<f64>, f64)> =
            (0..100).map(|i| (vec![i as f64 * 1e6, i as f64], i as f64)).collect();
        let m = KnnRegressor::fit(&pts).unwrap();
        let p = m.predict(&[55.3e6, 55.3], 2).unwrap();
        assert!((p - 55.3).abs() < 0.6, "p={p}");
    }

    #[test]
    fn k_larger_than_train_set_clamps() {
        let pts = vec![(vec![0.0], 1.0), (vec![1.0], 3.0)];
        let m = KnnRegressor::fit(&pts).unwrap();
        let p = m.predict(&[0.5], 100).unwrap();
        assert!((p - 2.0).abs() < 1e-9); // equidistant -> plain mean
    }

    #[test]
    fn validation_errors() {
        assert!(KnnRegressor::fit(&[]).is_err());
        assert!(KnnRegressor::fit(&[(vec![], 0.0)]).is_err());
        assert!(KnnRegressor::fit(&[(vec![1.0], 0.0), (vec![1.0, 2.0], 0.0)]).is_err());
        let m = KnnRegressor::fit(&[(vec![0.0], 1.0)]).unwrap();
        assert!(m.predict(&[0.0, 0.0], 1).is_err());
        assert!(m.predict(&[0.0], 0).is_err());
        assert!(m.rmse_on(&[], 1).is_err());
    }

    #[test]
    fn rmse_zero_on_training_data_k1() {
        let pts = grid_points(|x, y| x - y);
        let m = KnnRegressor::fit(&pts).unwrap();
        assert_eq!(m.rmse_on(&pts, 1).unwrap(), 0.0);
    }

    #[test]
    fn constant_feature_dimension_is_harmless() {
        let pts: Vec<(Vec<f64>, f64)> =
            (0..50).map(|i| (vec![i as f64, 7.0], i as f64 * 2.0)).collect();
        let m = KnnRegressor::fit(&pts).unwrap();
        let p = m.predict(&[10.0, 7.0], 1).unwrap();
        assert_eq!(p, 20.0);
    }
}
