//! Model selection: cross-validation over the KNN neighbourhood size.
//!
//! SOMOSPIE's modular design (paper ref \[8\]) treats the predictive model
//! as a swappable, *tunable* component; the practical tuning step is
//! choosing `k`. `select_k` runs leave-fold-out cross-validation on the
//! coarse training samples (the only labels a real deployment has —
//! ground truth at fine resolution does not exist in production) and
//! returns the `k` with the lowest held-out RMSE.

use crate::knn::KnnRegressor;
use nsdf_util::{NsdfError, Result};

/// Result of one cross-validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// `(k, mean held-out RMSE)` per candidate, in candidate order.
    pub scores: Vec<(usize, f64)>,
    /// The winning `k`.
    pub best_k: usize,
    /// Its held-out RMSE.
    pub best_rmse: f64,
}

/// `folds`-fold cross-validation of KNN over `candidates` neighbourhood
/// sizes. Folds are assigned round-robin (deterministic, spatially
/// interleaved — appropriate for gridded training data).
pub fn select_k(
    points: &[(Vec<f64>, f64)],
    candidates: &[usize],
    folds: usize,
) -> Result<CvReport> {
    if candidates.is_empty() {
        return Err(NsdfError::invalid("no candidate k values"));
    }
    if folds < 2 {
        return Err(NsdfError::invalid("cross-validation needs at least 2 folds"));
    }
    if points.len() < folds * 2 {
        return Err(NsdfError::invalid(format!(
            "{} training points is too few for {folds}-fold CV",
            points.len()
        )));
    }
    let mut scores = Vec::with_capacity(candidates.len());
    for &k in candidates {
        if k == 0 {
            return Err(NsdfError::invalid("k must be positive"));
        }
        let mut total_sq = 0.0;
        let mut total_n = 0usize;
        for fold in 0..folds {
            let train: Vec<(Vec<f64>, f64)> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| i % folds != fold)
                .map(|(_, p)| p.clone())
                .collect();
            let held: Vec<&(Vec<f64>, f64)> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| i % folds == fold)
                .map(|(_, p)| p)
                .collect();
            let model = KnnRegressor::fit(&train)?;
            for (f, t) in held {
                let p = model.predict(f, k)?;
                total_sq += (p - t) * (p - t);
                total_n += 1;
            }
        }
        scores.push((k, (total_sq / total_n as f64).sqrt()));
    }
    let &(best_k, best_rmse) =
        scores.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("candidates non-empty");
    Ok(CvReport { scores, best_k, best_rmse })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_points() -> Vec<(Vec<f64>, f64)> {
        let mut pts = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                let (x, y) = (i as f64, j as f64);
                pts.push((vec![x, y], (x * 0.4).sin() + (y * 0.3).cos()));
            }
        }
        pts
    }

    fn noisy_points(noise: f64) -> Vec<(Vec<f64>, f64)> {
        smooth_points()
            .into_iter()
            .enumerate()
            .map(|(i, (f, t))| {
                let u = nsdf_util::splitmix64(i as u64) as f64 / u64::MAX as f64;
                (f, t + noise * (2.0 * u - 1.0))
            })
            .collect()
    }

    #[test]
    fn cv_returns_scores_for_all_candidates() {
        let report = select_k(&smooth_points(), &[1, 3, 5, 9], 5).unwrap();
        assert_eq!(report.scores.len(), 4);
        assert!(report.scores.iter().any(|&(k, _)| k == report.best_k));
        assert!(report.best_rmse >= 0.0);
    }

    #[test]
    fn label_noise_hurts_small_k_disproportionately() {
        // Averaging (large k) suppresses label noise; k=1 absorbs it fully.
        // The noise penalty ratio must therefore be worse for k=1.
        let clean = select_k(&smooth_points(), &[1, 9], 4).unwrap();
        let noisy = select_k(&noisy_points(0.8), &[1, 9], 4).unwrap();
        let rmse = |r: &CvReport, k: usize| {
            r.scores.iter().find(|&&(kk, _)| kk == k).expect("candidate present").1
        };
        // Held-out labels are noisy too, so both k pay an irreducible
        // floor; the discriminating signal is the k=1 vs k=9 *gap*, which
        // must widen under noise (k=1 absorbs the training noise fully).
        let clean_gap = rmse(&clean, 1) - rmse(&clean, 9);
        let noisy_gap = rmse(&noisy, 1) - rmse(&noisy, 9);
        assert!(
            noisy_gap > clean_gap * 1.5,
            "noisy gap {noisy_gap:.3} vs clean gap {clean_gap:.3}"
        );
        assert_eq!(noisy.best_k, 9, "noisy data favours k=9: {:?}", noisy.scores);
    }

    #[test]
    fn cv_is_deterministic() {
        let a = select_k(&noisy_points(0.3), &[1, 3, 5], 4).unwrap();
        let b = select_k(&noisy_points(0.3), &[1, 3, 5], 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_errors() {
        let pts = smooth_points();
        assert!(select_k(&pts, &[], 4).is_err());
        assert!(select_k(&pts, &[3], 1).is_err());
        assert!(select_k(&pts, &[0], 4).is_err());
        assert!(select_k(&pts[..5], &[1], 4).is_err());
    }
}
