//! Mapping packages: how files map onto objects.
//!
//! NSDF-FUSE (paper §III-B, ref \[3\]) studies "customizable mapping
//! packages" between a POSIX-ish file view and S3-compatible object
//! storage. The three mappings here reproduce the design space that work
//! explores:
//!
//! * **one-to-one** — each file is one object; simplest, but small-file
//!   workloads pay one WAN round-trip per file;
//! * **chunked** — each file is split into fixed-size chunk objects plus a
//!   manifest; enables ranged reads and parallel transfer of big files;
//! * **packed** — many files are appended into large pack objects with a
//!   shared index; amortises per-request overhead for small files.

use nsdf_util::{NsdfError, Result};

/// A file-to-object mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// One file ⇔ one object.
    OneToOne,
    /// Files split into `chunk_bytes` objects plus a manifest object.
    Chunked {
        /// Chunk size in bytes (must be positive).
        chunk_bytes: usize,
    },
    /// Files appended into pack objects of roughly `pack_target_bytes`.
    Packed {
        /// Pack flush threshold in bytes (must be positive).
        pack_target_bytes: usize,
    },
}

impl Mapping {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Mapping::OneToOne => Ok(()),
            Mapping::Chunked { chunk_bytes } if chunk_bytes > 0 => Ok(()),
            Mapping::Packed { pack_target_bytes } if pack_target_bytes > 0 => Ok(()),
            _ => Err(NsdfError::invalid("mapping parameter must be positive")),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mapping::OneToOne => "one-to-one",
            Mapping::Chunked { .. } => "chunked",
            Mapping::Packed { .. } => "packed",
        }
    }

    /// The default palette NSDF-FUSE-style benchmarks sweep.
    pub fn palette() -> Vec<Mapping> {
        vec![
            Mapping::OneToOne,
            Mapping::Chunked { chunk_bytes: 1 << 20 },
            Mapping::Packed { pack_target_bytes: 8 << 20 },
        ]
    }
}

/// Metadata for one virtual file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStat {
    /// File path within the filesystem.
    pub path: String,
    /// Size in bytes.
    pub size: u64,
}

/// Validate a virtual file path (same grammar as object keys).
pub fn validate_path(path: &str) -> Result<()> {
    nsdf_storage::validate_key(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_is_valid() {
        for m in Mapping::palette() {
            assert!(m.validate().is_ok(), "{}", m.name());
        }
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(Mapping::Chunked { chunk_bytes: 0 }.validate().is_err());
        assert!(Mapping::Packed { pack_target_bytes: 0 }.validate().is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Mapping::OneToOne.name(), "one-to-one");
        assert_eq!(Mapping::Chunked { chunk_bytes: 1 }.name(), "chunked");
        assert_eq!(Mapping::Packed { pack_target_bytes: 1 }.name(), "packed");
    }
}
