//! NSDF-FUSE-style synthetic workloads: the op mixes whose cost the
//! mapping packages trade off against each other.

use crate::mapping::Mapping;
use crate::vfs::VirtualFs;
use nsdf_storage::{CloudStore, MemoryStore, NetworkProfile, ObjectStore};
use nsdf_util::{Obs, Result, SimClock};
use std::sync::Arc;

/// A create/read/delete workload over `files` files of `file_bytes` each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Number of files.
    pub files: usize,
    /// Size of each file in bytes.
    pub file_bytes: usize,
    /// Read passes over all files after the create pass.
    pub read_passes: usize,
    /// Whether to delete everything at the end.
    pub delete: bool,
}

impl OpMix {
    /// "Many small files" — the regime where packing wins.
    pub fn small_files() -> Self {
        OpMix { files: 200, file_bytes: 16 * 1024, read_passes: 1, delete: true }
    }

    /// "Few large files" — the regime where chunking wins.
    pub fn large_files() -> Self {
        OpMix { files: 4, file_bytes: 16 << 20, read_passes: 1, delete: true }
    }
}

/// Result of running one workload against one mapping over one network.
#[derive(Debug, Clone, PartialEq)]
pub struct FuseBenchResult {
    /// Mapping under test.
    pub mapping: Mapping,
    /// Network profile name.
    pub network: String,
    /// File operations issued (creates + reads + deletes).
    pub file_ops: u64,
    /// Object-store requests those file ops expanded to.
    pub store_read_ops: u64,
    /// Object-store write requests.
    pub store_write_ops: u64,
    /// WAN round trips those requests cost: batched `get_many`/`put_many`
    /// calls ride the profile's parallel streams, so one wave can carry
    /// many requests.
    pub store_waves: u64,
    /// Total virtual seconds the workload took.
    pub virtual_secs: f64,
}

/// Run `mix` against a fresh filesystem using `mapping` over a simulated
/// `profile` network, returning virtual-time accounting.
pub fn run_workload(
    mapping: Mapping,
    profile: NetworkProfile,
    mix: OpMix,
    seed: u64,
) -> Result<FuseBenchResult> {
    let clock = SimClock::new();
    let obs = Obs::new(clock.clone());
    let cloud = Arc::new(
        CloudStore::new(Arc::new(MemoryStore::new()), profile.clone(), clock.clone(), seed)
            .with_obs(&obs),
    );
    let fs = VirtualFs::new(cloud.clone() as Arc<dyn ObjectStore>, "bench", mapping)?;

    let payload: Vec<u8> = (0..mix.file_bytes).map(|i| (i % 251) as u8).collect();
    let mut file_ops = 0u64;
    let t0 = clock.now_secs();

    for i in 0..mix.files {
        fs.write_file(&format!("w/{i:06}.dat"), &payload)?;
        file_ops += 1;
    }
    fs.sync()?;
    for _ in 0..mix.read_passes {
        for i in 0..mix.files {
            let data = fs.read_file(&format!("w/{i:06}.dat"))?;
            debug_assert_eq!(data.len(), mix.file_bytes);
            file_ops += 1;
        }
    }
    if mix.delete {
        for i in 0..mix.files {
            fs.delete_file(&format!("w/{i:06}.dat"))?;
            file_ops += 1;
        }
        fs.sync()?;
    }

    let log = cloud.transfer_log();
    Ok(FuseBenchResult {
        mapping,
        network: profile.name,
        file_ops,
        store_read_ops: log.read_ops,
        store_write_ops: log.write_ops,
        store_waves: obs.snapshot().counter("wan.waves"),
        virtual_secs: clock.now_secs() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_file_workload_packed_beats_one_to_one() {
        let mix = OpMix { files: 50, file_bytes: 8 * 1024, read_passes: 1, delete: false };
        let profile = NetworkProfile::public_dataverse();
        let o2o = run_workload(Mapping::OneToOne, profile.clone(), mix, 1).unwrap();
        let packed =
            run_workload(Mapping::Packed { pack_target_bytes: 4 << 20 }, profile, mix, 1).unwrap();
        // Packing collapses 50 small PUTs into a handful of pack PUTs.
        assert!(
            packed.store_write_ops < o2o.store_write_ops / 4,
            "packed {} vs o2o {}",
            packed.store_write_ops,
            o2o.store_write_ops
        );
        assert!(packed.virtual_secs < o2o.virtual_secs);
    }

    #[test]
    fn chunked_splits_large_files_into_many_requests() {
        let mix = OpMix { files: 2, file_bytes: 4 << 20, read_passes: 1, delete: false };
        let profile = NetworkProfile::private_seal();
        let o2o = run_workload(Mapping::OneToOne, profile.clone(), mix, 2).unwrap();
        let chunked =
            run_workload(Mapping::Chunked { chunk_bytes: 1 << 20 }, profile, mix, 2).unwrap();
        assert!(chunked.store_write_ops > o2o.store_write_ops);
        assert_eq!(o2o.file_ops, chunked.file_ops);
    }

    #[test]
    fn chunked_batches_collapse_round_trips() {
        let mix = OpMix { files: 2, file_bytes: 1 << 20, read_passes: 1, delete: false };
        let r = run_workload(
            Mapping::Chunked { chunk_bytes: 128 << 10 },
            NetworkProfile::private_seal(),
            mix,
            4,
        )
        .unwrap();
        // 2 files x 8 chunks each: batched get_many/put_many ride the
        // profile's parallel streams, so round trips stay well below the
        // per-chunk request count.
        assert!(
            r.store_waves < r.store_read_ops + r.store_write_ops,
            "waves {} vs ops {}+{}",
            r.store_waves,
            r.store_read_ops,
            r.store_write_ops
        );
    }

    #[test]
    fn results_are_deterministic() {
        let mix = OpMix { files: 10, file_bytes: 1024, read_passes: 1, delete: true };
        let a = run_workload(Mapping::OneToOne, NetworkProfile::campus(), mix, 9).unwrap();
        let b = run_workload(Mapping::OneToOne, NetworkProfile::campus(), mix, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn workload_counts_ops() {
        let mix = OpMix { files: 5, file_bytes: 64, read_passes: 2, delete: true };
        let r = run_workload(Mapping::OneToOne, NetworkProfile::local(), mix, 3).unwrap();
        assert_eq!(r.file_ops, 5 + 10 + 5);
        assert!(r.virtual_secs > 0.0);
    }
}
