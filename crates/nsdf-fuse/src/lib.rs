//! # nsdf-fuse
//!
//! NSDF-FUSE-class virtual filesystem over object storage (paper §III-B).
//! The real service mounts S3-compatible stores through kernel FUSE; this
//! reproduction keeps the interesting part — the *mapping packages* that
//! translate file operations into object requests — as an in-process
//! library, which is exactly what the mapping-package benchmarks measure.
//!
//! * [`mapping`] — one-to-one / chunked / packed strategies;
//! * [`vfs`] — the [`VirtualFs`] file API over any store;
//! * [`workload`] — NSDF-FUSE-style op-mix benchmarks over simulated WANs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mapping;
pub mod vfs;
pub mod workload;

pub use mapping::{FileStat, Mapping};
pub use vfs::VirtualFs;
pub use workload::{run_workload, FuseBenchResult, OpMix};
