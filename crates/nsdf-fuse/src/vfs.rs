//! The virtual filesystem over an object store.

use crate::mapping::{validate_path, FileStat, Mapping};
use nsdf_storage::ObjectStore;
use nsdf_util::{NsdfError, Result};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Location of a packed file inside a pack object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackLoc {
    pack: u64,
    offset: u64,
    len: u64,
}

#[derive(Debug, Default)]
struct PackedState {
    /// Live files → pack location. `pack == u64::MAX` means "in the open
    /// (unflushed) buffer at `offset`".
    index: BTreeMap<String, PackLoc>,
    /// Next pack number to flush.
    next_pack: u64,
    /// Open pack buffer.
    buffer: Vec<u8>,
    /// Whether the persisted index is stale.
    dirty: bool,
}

/// NSDF-FUSE-class filesystem facade over any [`ObjectStore`].
///
/// All mappings present the same file API; `Packed` additionally requires
/// [`VirtualFs::sync`] to persist its open pack and index (done
/// automatically by the workload runner and on a best-effort basis by
/// `read`s of flushed data).
pub struct VirtualFs {
    store: Arc<dyn ObjectStore>,
    root: String,
    mapping: Mapping,
    packed: Mutex<PackedState>,
}

impl VirtualFs {
    /// Create a filesystem rooted at `root` within `store`.
    pub fn new(store: Arc<dyn ObjectStore>, root: &str, mapping: Mapping) -> Result<VirtualFs> {
        mapping.validate()?;
        nsdf_storage::validate_key(root)?;
        let fs = VirtualFs {
            store,
            root: root.to_string(),
            mapping,
            packed: Mutex::new(PackedState::default()),
        };
        if matches!(mapping, Mapping::Packed { .. }) {
            fs.load_packed_index()?;
        }
        Ok(fs)
    }

    /// The mapping in force.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    fn o_key(&self, path: &str) -> String {
        format!("{}/o/{path}", self.root)
    }

    fn chunk_key(&self, path: &str, i: usize) -> String {
        format!("{}/c/{path}/{i:06}.chunk", self.root)
    }

    fn manifest_key(&self, path: &str) -> String {
        format!("{}/c/{path}/manifest.txt", self.root)
    }

    fn pack_key(&self, n: u64) -> String {
        format!("{}/p/pack-{n:08}.bin", self.root)
    }

    fn index_key(&self) -> String {
        format!("{}/p/index.txt", self.root)
    }

    /// Write (create or replace) a file.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<()> {
        validate_path(path)?;
        match self.mapping {
            Mapping::OneToOne => {
                self.store.put(&self.o_key(path), data)?;
                Ok(())
            }
            Mapping::Chunked { chunk_bytes } => {
                let chunks = data.chunks(chunk_bytes.max(1)).collect::<Vec<_>>();
                // Replace semantics: drop stale chunks from a previous version.
                let _ = self.delete_chunked(path);
                // One batched round trip for all chunks instead of a put
                // per chunk (a WAN store overlaps these across streams).
                let keys: Vec<String> =
                    (0..chunks.len()).map(|i| self.chunk_key(path, i)).collect();
                let items: Vec<(&str, &[u8])> =
                    keys.iter().map(String::as_str).zip(chunks.iter().copied()).collect();
                for r in self.store.put_many(&items) {
                    r?;
                }
                let manifest = format!(
                    "size={}\nchunks={}\nchunk_bytes={}\n",
                    data.len(),
                    chunks.len(),
                    chunk_bytes
                );
                self.store.put(&self.manifest_key(path), manifest.as_bytes())?;
                Ok(())
            }
            Mapping::Packed { pack_target_bytes } => {
                let mut st = self.packed.lock();
                let offset = st.buffer.len() as u64;
                st.buffer.extend_from_slice(data);
                st.index.insert(
                    path.to_string(),
                    PackLoc { pack: u64::MAX, offset, len: data.len() as u64 },
                );
                st.dirty = true;
                if st.buffer.len() >= pack_target_bytes {
                    self.flush_pack(&mut st)?;
                }
                Ok(())
            }
        }
    }

    /// Read a whole file.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>> {
        validate_path(path)?;
        match self.mapping {
            Mapping::OneToOne => self.store.get(&self.o_key(path)),
            Mapping::Chunked { .. } => {
                let (size, chunks) = self.read_manifest(path)?;
                // Fetch every chunk in one batched round trip.
                let keys: Vec<String> = (0..chunks).map(|i| self.chunk_key(path, i)).collect();
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let mut out = Vec::with_capacity(size as usize);
                for r in self.store.get_many(&key_refs) {
                    out.extend_from_slice(&r?);
                }
                if out.len() as u64 != size {
                    return Err(NsdfError::corrupt(format!(
                        "file {path:?}: chunks total {} bytes, manifest says {size}",
                        out.len()
                    )));
                }
                Ok(out)
            }
            Mapping::Packed { .. } => {
                let loc = {
                    let st = self.packed.lock();
                    let loc = *st
                        .index
                        .get(path)
                        .ok_or_else(|| NsdfError::not_found(format!("file {path:?}")))?;
                    if loc.pack == u64::MAX {
                        // Still in the open buffer.
                        let start = loc.offset as usize;
                        return Ok(st.buffer[start..start + loc.len as usize].to_vec());
                    }
                    loc
                };
                self.store.get_range(&self.pack_key(loc.pack), loc.offset, loc.len)
            }
        }
    }

    /// Read `len` bytes of a file starting at `offset`.
    pub fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        validate_path(path)?;
        match self.mapping {
            Mapping::OneToOne => self.store.get_range(&self.o_key(path), offset, len),
            Mapping::Chunked { chunk_bytes } => {
                let (size, _chunks) = self.read_manifest(path)?;
                let end =
                    offset.checked_add(len).ok_or_else(|| NsdfError::invalid("range overflow"))?;
                if end > size {
                    return Err(NsdfError::invalid(format!(
                        "range {offset}+{len} exceeds file {path:?} of {size} bytes"
                    )));
                }
                let cb = chunk_bytes as u64;
                let mut out = Vec::with_capacity(len as usize);
                let mut pos = offset;
                while pos < end {
                    let chunk_idx = (pos / cb) as usize;
                    let within = pos % cb;
                    let take = (cb - within).min(end - pos);
                    out.extend_from_slice(&self.store.get_range(
                        &self.chunk_key(path, chunk_idx),
                        within,
                        take,
                    )?);
                    pos += take;
                }
                Ok(out)
            }
            Mapping::Packed { .. } => {
                let data = self.read_file(path)?;
                nsdf_storage::store::slice_range(&data, offset, len, path)
            }
        }
    }

    /// File metadata.
    pub fn stat(&self, path: &str) -> Result<FileStat> {
        validate_path(path)?;
        match self.mapping {
            Mapping::OneToOne => {
                let meta = self.store.head(&self.o_key(path))?;
                Ok(FileStat { path: path.to_string(), size: meta.size })
            }
            Mapping::Chunked { .. } => {
                let (size, _) = self.read_manifest(path)?;
                Ok(FileStat { path: path.to_string(), size })
            }
            Mapping::Packed { .. } => {
                let st = self.packed.lock();
                st.index
                    .get(path)
                    .map(|loc| FileStat { path: path.to_string(), size: loc.len })
                    .ok_or_else(|| NsdfError::not_found(format!("file {path:?}")))
            }
        }
    }

    /// Delete a file.
    pub fn delete_file(&self, path: &str) -> Result<()> {
        validate_path(path)?;
        match self.mapping {
            Mapping::OneToOne => self.store.delete(&self.o_key(path)),
            Mapping::Chunked { .. } => self.delete_chunked(path),
            Mapping::Packed { .. } => {
                let mut st = self.packed.lock();
                st.index
                    .remove(path)
                    .ok_or_else(|| NsdfError::not_found(format!("file {path:?}")))?;
                st.dirty = true;
                Ok(())
            }
        }
    }

    /// List files whose path starts with `prefix`, sorted.
    pub fn list_files(&self, prefix: &str) -> Result<Vec<FileStat>> {
        match self.mapping {
            Mapping::OneToOne => {
                let p = format!("{}/o/{prefix}", self.root);
                Ok(self
                    .store
                    .list(&p)?
                    .into_iter()
                    .map(|m| FileStat {
                        path: m.key[self.root.len() + 3..].to_string(),
                        size: m.size,
                    })
                    .collect())
            }
            Mapping::Chunked { .. } => {
                let p = format!("{}/c/{prefix}", self.root);
                let mut out = Vec::new();
                for m in self.store.list(&p)? {
                    if m.key.ends_with("/manifest.txt") {
                        let path = m.key[self.root.len() + 3..m.key.len() - "/manifest.txt".len()]
                            .to_string();
                        let (size, _) = self.read_manifest(&path)?;
                        out.push(FileStat { path, size });
                    }
                }
                Ok(out)
            }
            Mapping::Packed { .. } => {
                let st = self.packed.lock();
                Ok(st
                    .index
                    .iter()
                    .filter(|(p, _)| p.starts_with(prefix))
                    .map(|(p, loc)| FileStat { path: p.clone(), size: loc.len })
                    .collect())
            }
        }
    }

    /// Persist any open pack buffer and the pack index. A no-op for
    /// non-packed mappings.
    pub fn sync(&self) -> Result<()> {
        if !matches!(self.mapping, Mapping::Packed { .. }) {
            return Ok(());
        }
        let mut st = self.packed.lock();
        if !st.buffer.is_empty() {
            self.flush_pack(&mut st)?;
        }
        if st.dirty {
            self.persist_index(&st)?;
            st.dirty = false;
        }
        Ok(())
    }

    fn flush_pack(&self, st: &mut PackedState) -> Result<()> {
        let pack_no = st.next_pack;
        self.store.put(&self.pack_key(pack_no), &st.buffer)?;
        st.next_pack += 1;
        st.buffer.clear();
        // Rebind open-buffer entries to the flushed pack.
        for loc in st.index.values_mut() {
            if loc.pack == u64::MAX {
                loc.pack = pack_no;
            }
        }
        self.persist_index(st)?;
        st.dirty = false;
        Ok(())
    }

    fn persist_index(&self, st: &PackedState) -> Result<()> {
        let mut text = format!("next_pack={}\n", st.next_pack);
        for (path, loc) in &st.index {
            if loc.pack == u64::MAX {
                continue; // unflushed entries are not durable yet
            }
            text.push_str(&format!("{path} {} {} {}\n", loc.pack, loc.offset, loc.len));
        }
        self.store.put(&self.index_key(), text.as_bytes())?;
        Ok(())
    }

    fn load_packed_index(&self) -> Result<()> {
        let data = match self.store.get(&self.index_key()) {
            Ok(d) => d,
            Err(e) if e.is_not_found() => return Ok(()),
            Err(e) => return Err(e),
        };
        let text =
            String::from_utf8(data).map_err(|_| NsdfError::corrupt("pack index not UTF-8"))?;
        let mut st = self.packed.lock();
        for line in text.lines() {
            if let Some(np) = line.strip_prefix("next_pack=") {
                st.next_pack =
                    np.parse().map_err(|_| NsdfError::corrupt("bad next_pack in index"))?;
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some(path), Some(pack), Some(off), Some(len)) =
                (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(NsdfError::corrupt(format!("bad index line {line:?}")));
            };
            let loc = PackLoc {
                pack: pack.parse().map_err(|_| NsdfError::corrupt("bad pack number"))?,
                offset: off.parse().map_err(|_| NsdfError::corrupt("bad offset"))?,
                len: len.parse().map_err(|_| NsdfError::corrupt("bad length"))?,
            };
            st.index.insert(path.to_string(), loc);
        }
        Ok(())
    }

    /// Rewrite all live packed data into fresh packs, dropping the dead
    /// bytes left behind by deletes and overwrites. Returns
    /// `(live_bytes, reclaimed_bytes)`. A no-op for non-packed mappings.
    pub fn compact(&self) -> Result<(u64, u64)> {
        let Mapping::Packed { pack_target_bytes } = self.mapping else {
            return Ok((0, 0));
        };
        self.sync()?;
        let mut st = self.packed.lock();
        // Measure current pack usage.
        let mut pack_bytes = 0u64;
        for m in self.store.list(&format!("{}/p/pack-", self.root))? {
            pack_bytes += m.size;
        }
        let live_bytes: u64 = st.index.values().map(|l| l.len).sum();

        // Rewrite live files into fresh packs, then delete the old ones.
        let old_packs: Vec<String> = self
            .store
            .list(&format!("{}/p/pack-", self.root))?
            .into_iter()
            .map(|m| m.key)
            .collect();
        let entries: Vec<(String, PackLoc)> =
            st.index.iter().map(|(p, l)| (p.clone(), *l)).collect();
        // One batched fetch of every distinct live pack, then slice the
        // entries out in memory — instead of a get_range round trip per
        // live file.
        let live_packs: Vec<u64> = {
            let mut p: Vec<u64> = entries.iter().map(|(_, l)| l.pack).collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        let pack_keys: Vec<String> = live_packs.iter().map(|&n| self.pack_key(n)).collect();
        let pack_key_refs: Vec<&str> = pack_keys.iter().map(String::as_str).collect();
        let mut pack_data: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (&n, r) in live_packs.iter().zip(self.store.get_many(&pack_key_refs)) {
            pack_data.insert(n, r?);
        }
        let base = st.next_pack;
        let mut buffer = Vec::new();
        let mut pack_no = base;
        let mut new_index = std::collections::BTreeMap::new();
        for (path, loc) in entries {
            let pack = pack_data
                .get(&loc.pack)
                .ok_or_else(|| NsdfError::corrupt(format!("pack {} missing", loc.pack)))?;
            let data = pack.get(loc.offset as usize..(loc.offset + loc.len) as usize).ok_or_else(
                || NsdfError::corrupt(format!("file {path:?} outside pack {}", loc.pack)),
            )?;
            let offset = buffer.len() as u64;
            buffer.extend_from_slice(data);
            new_index.insert(path, PackLoc { pack: pack_no, offset, len: loc.len });
            if buffer.len() >= pack_target_bytes {
                self.store.put(&self.pack_key(pack_no), &buffer)?;
                buffer.clear();
                pack_no += 1;
            }
        }
        if !buffer.is_empty() {
            self.store.put(&self.pack_key(pack_no), &buffer)?;
            pack_no += 1;
        }
        st.index = new_index;
        st.next_pack = pack_no;
        self.persist_index(&st)?;
        st.dirty = false;
        for key in old_packs {
            let _ = self.store.delete(&key);
        }
        Ok((live_bytes, pack_bytes.saturating_sub(live_bytes)))
    }

    fn read_manifest(&self, path: &str) -> Result<(u64, usize)> {
        let data = self.store.get(&self.manifest_key(path)).map_err(|e| {
            if e.is_not_found() {
                NsdfError::not_found(format!("file {path:?}"))
            } else {
                e
            }
        })?;
        let text = String::from_utf8(data).map_err(|_| NsdfError::corrupt("manifest not UTF-8"))?;
        let m = nsdf_util::Meta::from_text(&text)?;
        Ok((m.get_parsed("size")?, m.get_parsed("chunks")?))
    }

    fn delete_chunked(&self, path: &str) -> Result<()> {
        let (_, chunks) = self.read_manifest(path)?;
        for i in 0..chunks {
            let _ = self.store.delete(&self.chunk_key(path, i));
        }
        self.store.delete(&self.manifest_key(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsdf_storage::MemoryStore;

    fn fs(mapping: Mapping) -> VirtualFs {
        VirtualFs::new(Arc::new(MemoryStore::new()), "fs", mapping).unwrap()
    }

    fn exercise_basic_ops(v: &VirtualFs) {
        let name = v.mapping().name();
        v.write_file("dir/a.dat", b"alpha").unwrap();
        v.write_file("dir/b.dat", b"bravo-bravo").unwrap();
        v.write_file("top.dat", b"").unwrap();
        assert_eq!(v.read_file("dir/a.dat").unwrap(), b"alpha", "{name}");
        assert_eq!(v.read_file("top.dat").unwrap(), b"", "{name}");
        assert_eq!(v.stat("dir/b.dat").unwrap().size, 11, "{name}");
        assert_eq!(v.read_range("dir/b.dat", 6, 5).unwrap(), b"bravo", "{name}");
        let listed = v.list_files("dir/").unwrap();
        assert_eq!(listed.len(), 2, "{name}");
        assert_eq!(listed[0].path, "dir/a.dat", "{name}");
        // Overwrite.
        v.write_file("dir/a.dat", b"ALPHA2").unwrap();
        assert_eq!(v.read_file("dir/a.dat").unwrap(), b"ALPHA2", "{name}");
        // Delete.
        v.delete_file("dir/a.dat").unwrap();
        assert!(v.read_file("dir/a.dat").unwrap_err().is_not_found(), "{name}");
        assert!(v.delete_file("dir/a.dat").is_err(), "{name}");
        assert!(v.read_file("never").unwrap_err().is_not_found(), "{name}");
    }

    #[test]
    fn basic_ops_all_mappings() {
        for m in Mapping::palette() {
            exercise_basic_ops(&fs(m));
        }
    }

    #[test]
    fn chunked_splits_into_multiple_objects() {
        let store = Arc::new(MemoryStore::new());
        let v = VirtualFs::new(store.clone(), "fs", Mapping::Chunked { chunk_bytes: 4 }).unwrap();
        v.write_file("f", b"0123456789").unwrap();
        // 3 chunks + manifest.
        assert_eq!(store.object_count(), 4);
        assert_eq!(v.read_file("f").unwrap(), b"0123456789");
        assert_eq!(v.read_range("f", 3, 5).unwrap(), b"34567");
        // Shrinking rewrite removes stale chunks.
        v.write_file("f", b"xy").unwrap();
        assert_eq!(store.object_count(), 2);
        assert_eq!(v.read_file("f").unwrap(), b"xy");
    }

    #[test]
    fn packed_amortises_puts() {
        let store = Arc::new(MemoryStore::new());
        let v =
            VirtualFs::new(store.clone(), "fs", Mapping::Packed { pack_target_bytes: 64 }).unwrap();
        for i in 0..10 {
            v.write_file(&format!("small-{i}"), &[i as u8; 10]).unwrap();
        }
        v.sync().unwrap();
        // 100 bytes / 64-byte target -> 2 packs + index, far fewer than 10.
        assert!(store.object_count() <= 4, "objects: {}", store.object_count());
        for i in 0..10 {
            assert_eq!(v.read_file(&format!("small-{i}")).unwrap(), vec![i as u8; 10]);
        }
    }

    #[test]
    fn packed_reads_from_open_buffer_before_sync() {
        let v = fs(Mapping::Packed { pack_target_bytes: 1 << 20 });
        v.write_file("pending", b"not yet flushed").unwrap();
        assert_eq!(v.read_file("pending").unwrap(), b"not yet flushed");
        assert_eq!(v.read_range("pending", 4, 3).unwrap(), b"yet");
    }

    #[test]
    fn packed_index_survives_reopen() {
        let store = Arc::new(MemoryStore::new());
        {
            let v = VirtualFs::new(store.clone(), "fs", Mapping::Packed { pack_target_bytes: 32 })
                .unwrap();
            v.write_file("a", b"aaaa").unwrap();
            v.write_file("b", b"bbbbbbbb").unwrap();
            v.delete_file("a").unwrap();
            v.sync().unwrap();
        }
        let v2 = VirtualFs::new(store, "fs", Mapping::Packed { pack_target_bytes: 32 }).unwrap();
        assert_eq!(v2.read_file("b").unwrap(), b"bbbbbbbb");
        assert!(v2.read_file("a").unwrap_err().is_not_found());
        assert_eq!(v2.list_files("").unwrap().len(), 1);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let store = Arc::new(MemoryStore::new());
        let v = VirtualFs::new(store.clone(), "fs", Mapping::Packed { pack_target_bytes: 256 })
            .unwrap();
        for i in 0..20 {
            v.write_file(&format!("f{i:02}"), &[i as u8; 64]).unwrap();
        }
        v.sync().unwrap();
        // Delete three quarters of the files: packs keep the dead bytes.
        for i in 0..15 {
            v.delete_file(&format!("f{i:02}")).unwrap();
        }
        v.sync().unwrap();
        let packs_before: u64 = store.list("fs/p/pack-").unwrap().iter().map(|m| m.size).sum();
        let (live, reclaimed) = v.compact().unwrap();
        assert_eq!(live, 5 * 64);
        assert_eq!(reclaimed, packs_before - live);
        let packs_after: u64 = store.list("fs/p/pack-").unwrap().iter().map(|m| m.size).sum();
        assert_eq!(packs_after, live);
        // Every surviving file still reads back.
        for i in 15..20 {
            assert_eq!(v.read_file(&format!("f{i:02}")).unwrap(), vec![i as u8; 64]);
        }
        // And the compacted index survives reopen.
        drop(v);
        let v2 = VirtualFs::new(store, "fs", Mapping::Packed { pack_target_bytes: 256 }).unwrap();
        assert_eq!(v2.list_files("").unwrap().len(), 5);
        assert_eq!(v2.read_file("f17").unwrap(), vec![17u8; 64]);
    }

    #[test]
    fn compaction_noop_for_other_mappings() {
        let v = fs(Mapping::OneToOne);
        v.write_file("a", b"data").unwrap();
        assert_eq!(v.compact().unwrap(), (0, 0));
        assert_eq!(v.read_file("a").unwrap(), b"data");
    }

    #[test]
    fn invalid_paths_rejected() {
        let v = fs(Mapping::OneToOne);
        assert!(v.write_file("/abs", b"x").is_err());
        assert!(v.write_file("a/../b", b"x").is_err());
    }

    #[test]
    fn ranged_read_bounds_checked() {
        for m in Mapping::palette() {
            let v = fs(m);
            v.write_file("f", b"0123456789").unwrap();
            assert!(v.read_range("f", 8, 5).is_err(), "{}", m.name());
        }
    }
}
