//! Model-based property testing: every mapping package must behave
//! identically to a plain in-memory map of `path -> bytes` under arbitrary
//! interleavings of write/read/delete/overwrite/sync/compact/reopen.

use nsdf_fuse::{Mapping, VirtualFs};
use nsdf_storage::{MemoryStore, ObjectStore};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Write(u8, Vec<u8>),
    Read(u8),
    Delete(u8),
    Stat(u8),
    List,
    Sync,
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(k, v)| Op::Write(k, v)),
        (0u8..12).prop_map(Op::Read),
        (0u8..12).prop_map(Op::Delete),
        (0u8..12).prop_map(Op::Stat),
        Just(Op::List),
        Just(Op::Sync),
        Just(Op::Compact),
        Just(Op::Reopen),
    ]
}

fn path(k: u8) -> String {
    format!("dir{}/file-{k:02}.dat", k % 3)
}

fn run_model(mapping: Mapping, ops: Vec<Op>) {
    let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let mut fs = VirtualFs::new(store.clone(), "mbt", mapping).unwrap();
    let mut model: HashMap<String, Vec<u8>> = HashMap::new();

    for op in ops {
        match op {
            Op::Write(k, data) => {
                fs.write_file(&path(k), &data).unwrap();
                model.insert(path(k), data);
            }
            Op::Read(k) => {
                let got = fs.read_file(&path(k));
                match model.get(&path(k)) {
                    Some(want) => assert_eq!(&got.unwrap(), want, "{}", mapping.name()),
                    None => assert!(got.unwrap_err().is_not_found(), "{}", mapping.name()),
                }
            }
            Op::Delete(k) => {
                let got = fs.delete_file(&path(k));
                if model.remove(&path(k)).is_some() {
                    got.unwrap();
                } else {
                    assert!(got.unwrap_err().is_not_found());
                }
            }
            Op::Stat(k) => {
                let got = fs.stat(&path(k));
                match model.get(&path(k)) {
                    Some(want) => {
                        assert_eq!(got.unwrap().size, want.len() as u64, "{}", mapping.name())
                    }
                    None => assert!(got.unwrap_err().is_not_found()),
                }
            }
            Op::List => {
                let mut got: Vec<String> =
                    fs.list_files("").unwrap().into_iter().map(|f| f.path).collect();
                got.sort();
                let mut want: Vec<String> = model.keys().cloned().collect();
                want.sort();
                assert_eq!(got, want, "{}", mapping.name());
            }
            Op::Sync => fs.sync().unwrap(),
            Op::Compact => {
                fs.compact().unwrap();
            }
            Op::Reopen => {
                // Durability boundary: everything must survive a restart.
                fs.sync().unwrap();
                fs = VirtualFs::new(store.clone(), "mbt", mapping).unwrap();
            }
        }
    }
    // Final full check.
    for (p, want) in &model {
        assert_eq!(&fs.read_file(p).unwrap(), want, "final state, {}", mapping.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn one_to_one_matches_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        run_model(Mapping::OneToOne, ops);
    }

    #[test]
    fn chunked_matches_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        run_model(Mapping::Chunked { chunk_bytes: 64 }, ops);
    }

    #[test]
    fn packed_matches_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        run_model(Mapping::Packed { pack_target_bytes: 256 }, ops);
    }
}
