//! The NSDF client: named storage endpoints over one virtual timeline.
//!
//! Mirrors the paper's entry-point model (§III, Fig. 2): a user session
//! reaches NSDF through an entry point that can address several storage
//! services — local scratch, a public commons (Dataverse-class), and a
//! private cloud (Seal-class) — all fronted by caches. In this
//! reproduction the remote services are the deterministic WAN simulation
//! from `nsdf-storage`, sharing a single [`SimClock`] so cross-service
//! workflows report coherent end-to-end times.

use nsdf_storage::{CachedStore, CloudStore, MemoryStore, NetworkProfile, ObjectStore};
use nsdf_util::obs::Obs;
use nsdf_util::{derive_seed, NsdfError, Result, SimClock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Classes of storage endpoint the tutorial distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// Local scratch (Option A in tutorial Steps 3–4).
    Local,
    /// Public commons, Dataverse-class.
    PublicCommons,
    /// Private cloud, Seal-class (Option B in tutorial Steps 3–4).
    PrivateCloud,
}

/// One named storage endpoint.
pub struct StorageEndpoint {
    /// Endpoint name (e.g. `"seal"`).
    pub name: String,
    /// Endpoint class.
    pub kind: EndpointKind,
    /// The store, already wrapped in WAN simulation and caching as
    /// appropriate for its class.
    pub store: Arc<dyn ObjectStore>,
}

impl std::fmt::Debug for StorageEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEndpoint")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("store", &self.store.describe())
            .finish()
    }
}

/// The client session.
pub struct NsdfClient {
    clock: SimClock,
    obs: Obs,
    endpoints: BTreeMap<String, StorageEndpoint>,
}

impl NsdfClient {
    /// A fully simulated client with the tutorial's three endpoints:
    /// `"local"`, `"dataverse"` (public), and `"seal"` (private), the two
    /// remote ones behind WAN models and a 256 MiB read cache each.
    ///
    /// All endpoints report into one observability registry on the shared
    /// clock; metrics are namespaced per endpoint (`seal.wan.bytes_down`,
    /// `dataverse.cache.hits`, ...). Get it via [`NsdfClient::obs`].
    pub fn simulated(seed: u64) -> NsdfClient {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let mut client =
            NsdfClient { clock: clock.clone(), obs: obs.clone(), endpoints: BTreeMap::new() };

        client.add_endpoint(StorageEndpoint {
            name: "local".into(),
            kind: EndpointKind::Local,
            store: Arc::new(MemoryStore::new()),
        });
        for (name, kind, profile, label) in [
            (
                "dataverse",
                EndpointKind::PublicCommons,
                NetworkProfile::public_dataverse(),
                "wan-dataverse",
            ),
            ("seal", EndpointKind::PrivateCloud, NetworkProfile::private_seal(), "wan-seal"),
        ] {
            let ep_obs = obs.scoped(name);
            let wan = Arc::new(
                CloudStore::new(
                    Arc::new(MemoryStore::new()),
                    profile,
                    clock.clone(),
                    derive_seed(seed, label),
                )
                .with_obs(&ep_obs),
            );
            let cached = Arc::new(CachedStore::new(wan, 256 << 20).with_obs(&ep_obs));
            client.add_endpoint(StorageEndpoint { name: name.into(), kind, store: cached });
        }
        client
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The session-wide observability registry all simulated endpoints
    /// report into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Register an endpoint (replacing any existing one with the name).
    pub fn add_endpoint(&mut self, ep: StorageEndpoint) {
        self.endpoints.insert(ep.name.clone(), ep);
    }

    /// Endpoint names, sorted.
    pub fn endpoint_names(&self) -> Vec<String> {
        self.endpoints.keys().cloned().collect()
    }

    /// Look up an endpoint.
    pub fn endpoint(&self, name: &str) -> Result<&StorageEndpoint> {
        self.endpoints.get(name).ok_or_else(|| NsdfError::not_found(format!("endpoint {name:?}")))
    }

    /// The store behind an endpoint.
    pub fn store(&self, name: &str) -> Result<Arc<dyn ObjectStore>> {
        Ok(self.endpoint(name)?.store.clone())
    }

    /// Upload bytes to an endpoint. Returns the stored size.
    pub fn upload(&self, endpoint: &str, key: &str, data: &[u8]) -> Result<u64> {
        let meta = self.store(endpoint)?.put(key, data)?;
        Ok(meta.size)
    }

    /// Download bytes from an endpoint.
    pub fn download(&self, endpoint: &str, key: &str) -> Result<Vec<u8>> {
        self.store(endpoint)?.get(key)
    }

    /// Copy one object between endpoints (download then upload, which is
    /// how a client-side transfer actually moves bytes). Returns the size.
    pub fn transfer(&self, from: &str, key: &str, to: &str, to_key: &str) -> Result<u64> {
        let data = self.download(from, key)?;
        self.upload(to, to_key, &data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_client_has_three_endpoints() {
        let c = NsdfClient::simulated(1);
        assert_eq!(c.endpoint_names(), vec!["dataverse", "local", "seal"]);
        assert_eq!(c.endpoint("local").unwrap().kind, EndpointKind::Local);
        assert_eq!(c.endpoint("seal").unwrap().kind, EndpointKind::PrivateCloud);
        assert!(c.endpoint("gcs").unwrap_err().is_not_found());
    }

    #[test]
    fn upload_download_roundtrip_charges_time_on_remote() {
        let c = NsdfClient::simulated(2);
        let t0 = c.clock().now_ns();
        c.upload("local", "a", b"payload").unwrap();
        assert_eq!(c.clock().now_ns(), t0, "local is free");
        c.upload("seal", "a", &vec![0u8; 1 << 20]).unwrap();
        assert!(c.clock().now_ns() > t0, "seal upload costs virtual time");
        assert_eq!(c.download("seal", "a").unwrap().len(), 1 << 20);
    }

    #[test]
    fn transfer_moves_between_endpoints() {
        let c = NsdfClient::simulated(3);
        c.upload("dataverse", "dem.tif", b"tiff-bytes").unwrap();
        let n = c.transfer("dataverse", "dem.tif", "local", "scratch/dem.tif").unwrap();
        assert_eq!(n, 10);
        assert_eq!(c.download("local", "scratch/dem.tif").unwrap(), b"tiff-bytes");
    }

    #[test]
    fn remote_reads_are_cached() {
        let c = NsdfClient::simulated(4);
        c.upload("seal", "blob", &vec![7u8; 4 << 20]).unwrap();
        let t0 = c.clock().now_ns();
        c.download("seal", "blob").unwrap(); // warm (put populated cache)
        assert_eq!(c.clock().now_ns(), t0, "cached read skips the WAN");
    }

    #[test]
    fn endpoints_share_one_namespaced_registry() {
        let c = NsdfClient::simulated(9);
        c.upload("seal", "a", &vec![0u8; 1 << 20]).unwrap();
        c.upload("dataverse", "b", &vec![0u8; 1 << 20]).unwrap();
        c.download("seal", "a").unwrap(); // cache hit, no WAN
        let snap = c.obs().snapshot();
        assert_eq!(snap.counter("seal.wan.bytes_up"), 1 << 20);
        assert_eq!(snap.counter("dataverse.wan.bytes_up"), 1 << 20);
        assert_eq!(snap.counter("seal.cache.hits"), 1);
        assert_eq!(snap.counter("seal.wan.read_ops"), 0);
        // WAN busy time across both endpoints mirrors the shared clock.
        assert_eq!(
            snap.counter("seal.wan.busy_vns") + snap.counter("dataverse.wan.busy_vns"),
            c.clock().now_ns()
        );
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = |seed| {
            let c = NsdfClient::simulated(seed);
            c.upload("dataverse", "x", &vec![1u8; 123_456]).unwrap();
            c.transfer("dataverse", "x", "seal", "x").unwrap();
            c.clock().now_ns()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
