//! The NSDF client: named storage endpoints over one virtual timeline.
//!
//! Mirrors the paper's entry-point model (§III, Fig. 2): a user session
//! reaches NSDF through an entry point that can address several storage
//! services — local scratch, a public commons (Dataverse-class), and a
//! private cloud (Seal-class) — all fronted by caches. In this
//! reproduction the remote services are the deterministic WAN simulation
//! from `nsdf-storage`, sharing a single [`SimClock`] so cross-service
//! workflows report coherent end-to-end times.

use nsdf_idx::{IdxDataset, QuerySession};
use nsdf_storage::{
    BreakerPolicy, BreakerStore, CachedStore, CloudStore, FaultPlan, FaultStore, HedgePolicy,
    IntegrityStore, MemoryStore, NetworkProfile, ObjectStore, RetryPolicy, RetryStore, SchedPolicy,
    SchedStore, TieredConfig, TieredStore, WanScheduler,
};
use nsdf_util::obs::Obs;
use nsdf_util::{derive_seed, NsdfError, Result, SimClock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Resilience policy for a simulated remote endpoint: how its store stack
/// retries, hedges, sheds load, and verifies payloads.
///
/// Applied by [`NsdfClient::simulated_chaos`], which assembles each remote
/// endpoint as
///
/// ```text
/// CachedStore → RetryStore → IntegrityStore → BreakerStore → FaultStore → CloudStore
/// ```
///
/// so a fault injected at the bottom is first seen by the breaker (endpoint
/// health), then surfaced as a checksum failure if it was silent
/// corruption, then retried/hedged, and finally hidden from warm reads by
/// the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndpointPolicy {
    /// Exponential-backoff retry policy.
    pub retry: RetryPolicy,
    /// Hedged backup waves for batch reads; `None` disables hedging.
    pub hedge: Option<HedgePolicy>,
    /// Per-endpoint circuit breaker; `None` disables the breaker.
    pub breaker: Option<BreakerPolicy>,
    /// Verify payload checksums against object metadata, turning silent
    /// corruption into retryable I/O errors.
    pub verify_checksums: bool,
    /// Read-cache budget in bytes.
    pub cache_bytes: u64,
}

impl Default for EndpointPolicy {
    /// Defaults tolerate sustained ~20% fault rates without tripping: three
    /// retry attempts with one 20 ms hedge wave, a breaker that only opens
    /// on 16 consecutive failures, checksum verification on, and the same
    /// 256 MiB cache as [`NsdfClient::simulated`].
    fn default() -> Self {
        EndpointPolicy {
            retry: RetryPolicy::default(),
            hedge: Some(HedgePolicy::default()),
            breaker: Some(BreakerPolicy {
                failure_threshold: 16,
                cooldown_secs: 0.05,
                success_threshold: 2,
            }),
            verify_checksums: true,
            cache_bytes: 256 << 20,
        }
    }
}

/// Classes of storage endpoint the tutorial distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// Local scratch (Option A in tutorial Steps 3–4).
    Local,
    /// Public commons, Dataverse-class.
    PublicCommons,
    /// Private cloud, Seal-class (Option B in tutorial Steps 3–4).
    PrivateCloud,
}

/// One named storage endpoint.
pub struct StorageEndpoint {
    /// Endpoint name (e.g. `"seal"`).
    pub name: String,
    /// Endpoint class.
    pub kind: EndpointKind,
    /// The store, already wrapped in WAN simulation and caching as
    /// appropriate for its class.
    pub store: Arc<dyn ObjectStore>,
}

impl std::fmt::Debug for StorageEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEndpoint")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("store", &self.store.describe())
            .finish()
    }
}

/// The client session.
pub struct NsdfClient {
    clock: SimClock,
    obs: Obs,
    endpoints: BTreeMap<String, StorageEndpoint>,
}

impl NsdfClient {
    /// A fully simulated client with the tutorial's three endpoints:
    /// `"local"`, `"dataverse"` (public), and `"seal"` (private), the two
    /// remote ones behind WAN models and a 256 MiB read cache each.
    ///
    /// All endpoints report into one observability registry on the shared
    /// clock; metrics are namespaced per endpoint (`seal.wan.bytes_down`,
    /// `dataverse.cache.hits`, ...). Get it via [`NsdfClient::obs`].
    pub fn simulated(seed: u64) -> NsdfClient {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let mut client =
            NsdfClient { clock: clock.clone(), obs: obs.clone(), endpoints: BTreeMap::new() };

        client.add_endpoint(StorageEndpoint {
            name: "local".into(),
            kind: EndpointKind::Local,
            store: Arc::new(MemoryStore::new()),
        });
        for (name, kind, profile, label) in [
            (
                "dataverse",
                EndpointKind::PublicCommons,
                NetworkProfile::public_dataverse(),
                "wan-dataverse",
            ),
            ("seal", EndpointKind::PrivateCloud, NetworkProfile::private_seal(), "wan-seal"),
        ] {
            let ep_obs = obs.scoped(name);
            let wan = Arc::new(
                CloudStore::new(
                    Arc::new(MemoryStore::new()),
                    profile,
                    clock.clone(),
                    derive_seed(seed, label),
                )
                .with_obs(&ep_obs),
            );
            let cached = Arc::new(CachedStore::new(wan, 256 << 20).with_obs(&ep_obs));
            client.add_endpoint(StorageEndpoint { name: name.into(), kind, store: cached });
        }
        client
    }

    /// Like [`NsdfClient::simulated`], but each remote endpoint reads
    /// through a persistent two-tier cache ([`TieredStore`]): TinyLFU-
    /// admitted RAM over a content-addressed disk tier rooted at
    /// `tier.root/<endpoint>`.
    ///
    /// The disk tier survives the client: a second `simulated_tiered`
    /// client opened on the same root (same seed or not) serves previously
    /// fetched objects from disk with `wan.read_ops == 0` — the
    /// restart-warm path the tutorial's repeated training sessions rely
    /// on. Disk accounting lands under each endpoint's scope
    /// (`seal.disk.hits`, `dataverse.disk.spills`, ...).
    pub fn simulated_tiered(seed: u64, tier: &TieredConfig) -> Result<NsdfClient> {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let mut client =
            NsdfClient { clock: clock.clone(), obs: obs.clone(), endpoints: BTreeMap::new() };

        client.add_endpoint(StorageEndpoint {
            name: "local".into(),
            kind: EndpointKind::Local,
            store: Arc::new(MemoryStore::new()),
        });
        for (name, kind, profile, label) in [
            (
                "dataverse",
                EndpointKind::PublicCommons,
                NetworkProfile::public_dataverse(),
                "wan-dataverse",
            ),
            ("seal", EndpointKind::PrivateCloud, NetworkProfile::private_seal(), "wan-seal"),
        ] {
            let ep_obs = obs.scoped(name);
            let wan = Arc::new(
                CloudStore::new(
                    Arc::new(MemoryStore::new()),
                    profile,
                    clock.clone(),
                    derive_seed(seed, label),
                )
                .with_obs(&ep_obs),
            );
            let mut ep_tier = tier.clone();
            ep_tier.root = tier.root.join(name);
            let tiered = Arc::new(TieredStore::open(wan, &ep_tier, clock.clone(), &ep_obs)?);
            client.add_endpoint(StorageEndpoint { name: name.into(), kind, store: tiered });
        }
        Ok(client)
    }

    /// A simulated client whose remote endpoints run a scripted fault plan
    /// behind the full resilience stack described by [`EndpointPolicy`].
    ///
    /// Both remotes execute the same `plan` timeline, but every stochastic
    /// draw is salted per endpoint (`derive_seed(plan.seed, name)`), so
    /// "dataverse" and "seal" fail independently while staying
    /// seed-deterministic. Breaker, retry, hedge, integrity, fault, WAN,
    /// and cache metrics all land in the endpoint's scope of one shared
    /// registry (`seal.breaker.opened`, `dataverse.fault.injected`, ...).
    pub fn simulated_chaos(
        seed: u64,
        plan: &FaultPlan,
        policy: &EndpointPolicy,
    ) -> Result<NsdfClient> {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let mut client =
            NsdfClient { clock: clock.clone(), obs: obs.clone(), endpoints: BTreeMap::new() };

        client.add_endpoint(StorageEndpoint {
            name: "local".into(),
            kind: EndpointKind::Local,
            store: Arc::new(MemoryStore::new()),
        });
        for (name, kind, profile, label) in [
            (
                "dataverse",
                EndpointKind::PublicCommons,
                NetworkProfile::public_dataverse(),
                "wan-dataverse",
            ),
            ("seal", EndpointKind::PrivateCloud, NetworkProfile::private_seal(), "wan-seal"),
        ] {
            let ep_obs = obs.scoped(name);
            let wan = Arc::new(
                CloudStore::new(
                    Arc::new(MemoryStore::new()),
                    profile,
                    clock.clone(),
                    derive_seed(seed, label),
                )
                .with_obs(&ep_obs),
            );
            let mut ep_plan = plan.clone();
            ep_plan.seed = derive_seed(plan.seed, name);
            let faulty = Arc::new(FaultStore::new(wan, ep_plan, clock.clone())?.with_obs(&ep_obs));
            let mut stack: Arc<dyn ObjectStore> = faulty;
            if let Some(breaker) = policy.breaker {
                stack =
                    Arc::new(BreakerStore::new(stack, breaker, clock.clone())?.with_obs(&ep_obs));
            }
            if policy.verify_checksums {
                stack = Arc::new(IntegrityStore::new(stack).with_obs(&ep_obs));
            }
            let mut retry = RetryStore::new(stack, policy.retry, clock.clone())?;
            if let Some(hedge) = policy.hedge {
                retry = retry.with_hedging(hedge)?;
            }
            stack = Arc::new(retry.with_obs(&ep_obs));
            let cached = Arc::new(CachedStore::new(stack, policy.cache_bytes).with_obs(&ep_obs));
            client.add_endpoint(StorageEndpoint { name: name.into(), kind, store: cached });
        }
        Ok(client)
    }

    /// A simulated client built for multi-tenant fleet runs: both remote
    /// endpoints share one [`WanScheduler`] enforcing `sched_policy`, and
    /// the raw backing [`MemoryStore`]s are exposed so fleet drivers can
    /// seed datasets without charging the WAN.
    ///
    /// With `chaos = Some(plan)` each remote runs the scripted fault plan
    /// behind the full resilience stack of [`EndpointPolicy`] (exactly the
    /// [`NsdfClient::simulated_chaos`] assembly); with `None` the remotes
    /// are the plain WAN + cache of [`NsdfClient::simulated`]. Tenants get
    /// per-tenant [`SchedStore`] handles *above* the shared cache via
    /// [`FleetClient::tenant_store`], so cache hits are free while misses
    /// are attributed to the tenant that caused them.
    ///
    /// With `tier = Some(cfg)` each remote's shared cache becomes the
    /// persistent two-tier stack of [`NsdfClient::simulated_tiered`]
    /// (rooted at `cfg.root/<endpoint>`), so all fleet tenants share one
    /// disk tier: the first tenant to pull a popular block pays the WAN,
    /// everyone after hits RAM or disk. Disk service time lands inside the
    /// tenants' attributed service time but not in their WAN byte grants,
    /// so with a disk tier `sched_service_vns >= wan_busy_vns` while
    /// grants ≡ WAN bytes stays exact.
    pub fn simulated_fleet(
        seed: u64,
        sched_policy: SchedPolicy,
        chaos: Option<&FaultPlan>,
        policy: &EndpointPolicy,
        tier: Option<&TieredConfig>,
    ) -> Result<FleetClient> {
        let clock = SimClock::new();
        let obs = Obs::new(clock.clone());
        let mut client =
            NsdfClient { clock: clock.clone(), obs: obs.clone(), endpoints: BTreeMap::new() };
        let scheduler = Arc::new(WanScheduler::new(clock.clone(), sched_policy).with_obs(&obs));
        let mut backing = BTreeMap::new();

        client.add_endpoint(StorageEndpoint {
            name: "local".into(),
            kind: EndpointKind::Local,
            store: Arc::new(MemoryStore::new()),
        });
        for (name, kind, profile, label) in [
            (
                "dataverse",
                EndpointKind::PublicCommons,
                NetworkProfile::public_dataverse(),
                "wan-dataverse",
            ),
            ("seal", EndpointKind::PrivateCloud, NetworkProfile::private_seal(), "wan-seal"),
        ] {
            let ep_obs = obs.scoped(name);
            let mem = Arc::new(MemoryStore::new());
            let wan = Arc::new(
                CloudStore::new(
                    mem.clone() as Arc<dyn ObjectStore>,
                    profile.clone(),
                    clock.clone(),
                    derive_seed(seed, label),
                )
                .with_obs(&ep_obs),
            );
            let mut stack: Arc<dyn ObjectStore> = wan;
            if let Some(plan) = chaos {
                let mut ep_plan = plan.clone();
                ep_plan.seed = derive_seed(plan.seed, name);
                stack = Arc::new(FaultStore::new(stack, ep_plan, clock.clone())?.with_obs(&ep_obs));
                if let Some(breaker) = policy.breaker {
                    stack = Arc::new(
                        BreakerStore::new(stack, breaker, clock.clone())?.with_obs(&ep_obs),
                    );
                }
                if policy.verify_checksums {
                    stack = Arc::new(IntegrityStore::new(stack).with_obs(&ep_obs));
                }
                let mut retry = RetryStore::new(stack, policy.retry, clock.clone())?;
                if let Some(hedge) = policy.hedge {
                    retry = retry.with_hedging(hedge)?;
                }
                stack = Arc::new(retry.with_obs(&ep_obs));
            }
            let front: Arc<dyn ObjectStore> = match tier {
                Some(cfg) => {
                    let mut ep_tier = cfg.clone();
                    ep_tier.root = cfg.root.join(name);
                    // The RAM tier budget stays the fleet's cache knob so
                    // tiered and non-tiered runs are comparable.
                    ep_tier.ram_capacity_bytes = policy.cache_bytes;
                    Arc::new(TieredStore::open(stack, &ep_tier, clock.clone(), &ep_obs)?)
                }
                None => Arc::new(CachedStore::new(stack, policy.cache_bytes).with_obs(&ep_obs)),
            };
            scheduler.register_endpoint(name, &profile, &ep_obs);
            backing.insert(name.to_string(), mem);
            client.add_endpoint(StorageEndpoint { name: name.into(), kind, store: front });
        }
        Ok(FleetClient { client, scheduler, backing })
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The session-wide observability registry all simulated endpoints
    /// report into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Register an endpoint (replacing any existing one with the name).
    pub fn add_endpoint(&mut self, ep: StorageEndpoint) {
        self.endpoints.insert(ep.name.clone(), ep);
    }

    /// Endpoint names, sorted.
    pub fn endpoint_names(&self) -> Vec<String> {
        self.endpoints.keys().cloned().collect()
    }

    /// Look up an endpoint.
    pub fn endpoint(&self, name: &str) -> Result<&StorageEndpoint> {
        self.endpoints.get(name).ok_or_else(|| NsdfError::not_found(format!("endpoint {name:?}")))
    }

    /// The store behind an endpoint.
    pub fn store(&self, name: &str) -> Result<Arc<dyn ObjectStore>> {
        Ok(self.endpoint(name)?.store.clone())
    }

    /// Upload bytes to an endpoint. Returns the stored size.
    pub fn upload(&self, endpoint: &str, key: &str, data: &[u8]) -> Result<u64> {
        let meta = self.store(endpoint)?.put(key, data)?;
        Ok(meta.size)
    }

    /// Download bytes from an endpoint.
    pub fn download(&self, endpoint: &str, key: &str) -> Result<Vec<u8>> {
        self.store(endpoint)?.get(key)
    }

    /// Copy one object between endpoints (download then upload, which is
    /// how a client-side transfer actually moves bytes). Returns the size.
    pub fn transfer(&self, from: &str, key: &str, to: &str, to_key: &str) -> Result<u64> {
        let data = self.download(from, key)?;
        self.upload(to, to_key, &data)
    }

    /// Open an IDX dataset stored under `base` at an endpoint, wired into
    /// the client's registry under the endpoint's scope
    /// (`seal.idx.fetch_vns`, ...) on the shared clock.
    pub fn open_dataset(&self, endpoint: &str, base: &str) -> Result<Arc<IdxDataset>> {
        let store = self.store(endpoint)?;
        Ok(Arc::new(IdxDataset::open(store, base)?.with_obs(&self.obs.scoped(endpoint))))
    }

    /// Open an interactive [`QuerySession`] on `field` of the dataset at
    /// `endpoint`/`base` — the stateful progressive-query engine one viewer
    /// owns (level-delta refinement, cancellation, prefetch). Session
    /// counters land under the endpoint's scope (`seal.session.*`), where
    /// `session.fetch_vns` reconciles exactly with `wan.busy_vns` for cold
    /// reads.
    pub fn open_session(
        &self,
        endpoint: &str,
        base: &str,
        field: &str,
    ) -> Result<QuerySession<f32>> {
        let ds = self.open_dataset(endpoint, base)?;
        Ok(QuerySession::<f32>::new(ds, field)?.with_obs(&self.obs.scoped(endpoint)))
    }
}

/// A simulated client plus the shared-WAN scheduling plane of a fleet run:
/// the [`WanScheduler`] every tenant handle accounts against and the raw
/// backing stores used to seed datasets WAN-free.
pub struct FleetClient {
    client: NsdfClient,
    scheduler: Arc<WanScheduler>,
    backing: BTreeMap<String, Arc<MemoryStore>>,
}

impl FleetClient {
    /// The underlying client (clock, registry, shared endpoint stacks).
    pub fn client(&self) -> &NsdfClient {
        &self.client
    }

    /// The shared admission layer.
    pub fn scheduler(&self) -> &Arc<WanScheduler> {
        &self.scheduler
    }

    /// The raw memory store behind a remote endpoint. Writes here bypass
    /// the WAN entirely — the fleet generator seeds datasets this way so
    /// setup is not part of the measured traffic.
    pub fn backing(&self, endpoint: &str) -> Result<Arc<MemoryStore>> {
        self.backing
            .get(endpoint)
            .cloned()
            .ok_or_else(|| NsdfError::not_found(format!("backing store for {endpoint:?}")))
    }

    /// A per-tenant scheduler-accounted handle over the endpoint's shared
    /// cache stack.
    pub fn tenant_store(&self, endpoint: &str, tenant: &str) -> Result<Arc<SchedStore>> {
        self.scheduler.tenant_store(endpoint, tenant, self.client.store(endpoint)?)
    }

    /// Open a [`QuerySession`] for one tenant: the dataset reads through
    /// the tenant's [`SchedStore`], so every wave the session submits is
    /// admitted, tagged, and accounted under that tenant. Each tenant gets
    /// its own dataset instance (and decoded cache); only the block cache
    /// below is shared across the fleet.
    pub fn open_tenant_session(
        &self,
        endpoint: &str,
        tenant: &str,
        base: &str,
        field: &str,
    ) -> Result<QuerySession<f32>> {
        let store = self.tenant_store(endpoint, tenant)? as Arc<dyn ObjectStore>;
        let ep_obs = self.client.obs().scoped(endpoint);
        let ds = Arc::new(IdxDataset::open(store, base)?.with_obs(&ep_obs));
        Ok(QuerySession::<f32>::new(ds, field)?.with_obs(&ep_obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_client_has_three_endpoints() {
        let c = NsdfClient::simulated(1);
        assert_eq!(c.endpoint_names(), vec!["dataverse", "local", "seal"]);
        assert_eq!(c.endpoint("local").unwrap().kind, EndpointKind::Local);
        assert_eq!(c.endpoint("seal").unwrap().kind, EndpointKind::PrivateCloud);
        assert!(c.endpoint("gcs").unwrap_err().is_not_found());
    }

    #[test]
    fn upload_download_roundtrip_charges_time_on_remote() {
        let c = NsdfClient::simulated(2);
        let t0 = c.clock().now_ns();
        c.upload("local", "a", b"payload").unwrap();
        assert_eq!(c.clock().now_ns(), t0, "local is free");
        c.upload("seal", "a", &vec![0u8; 1 << 20]).unwrap();
        assert!(c.clock().now_ns() > t0, "seal upload costs virtual time");
        assert_eq!(c.download("seal", "a").unwrap().len(), 1 << 20);
    }

    #[test]
    fn transfer_moves_between_endpoints() {
        let c = NsdfClient::simulated(3);
        c.upload("dataverse", "dem.tif", b"tiff-bytes").unwrap();
        let n = c.transfer("dataverse", "dem.tif", "local", "scratch/dem.tif").unwrap();
        assert_eq!(n, 10);
        assert_eq!(c.download("local", "scratch/dem.tif").unwrap(), b"tiff-bytes");
    }

    #[test]
    fn remote_reads_are_cached() {
        let c = NsdfClient::simulated(4);
        c.upload("seal", "blob", &vec![7u8; 4 << 20]).unwrap();
        let t0 = c.clock().now_ns();
        c.download("seal", "blob").unwrap(); // warm (put populated cache)
        assert_eq!(c.clock().now_ns(), t0, "cached read skips the WAN");
    }

    #[test]
    fn endpoints_share_one_namespaced_registry() {
        let c = NsdfClient::simulated(9);
        c.upload("seal", "a", &vec![0u8; 1 << 20]).unwrap();
        c.upload("dataverse", "b", &vec![0u8; 1 << 20]).unwrap();
        c.download("seal", "a").unwrap(); // cache hit, no WAN
        let snap = c.obs().snapshot();
        assert_eq!(snap.counter("seal.wan.bytes_up"), 1 << 20);
        assert_eq!(snap.counter("dataverse.wan.bytes_up"), 1 << 20);
        assert_eq!(snap.counter("seal.cache.hits"), 1);
        assert_eq!(snap.counter("seal.wan.read_ops"), 0);
        // WAN busy time across both endpoints mirrors the shared clock.
        assert_eq!(
            snap.counter("seal.wan.busy_vns") + snap.counter("dataverse.wan.busy_vns"),
            c.clock().now_ns()
        );
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = |seed| {
            let c = NsdfClient::simulated(seed);
            c.upload("dataverse", "x", &vec![1u8; 123_456]).unwrap();
            c.transfer("dataverse", "x", "seal", "x").unwrap();
            c.clock().now_ns()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn chaos_client_masks_faults_behind_the_stack() {
        let plan = FaultPlan::new(41).with_fault_rate(0.2).with_corrupt_rate(0.05);
        let policy = EndpointPolicy {
            retry: RetryPolicy { max_attempts: 6, ..RetryPolicy::default() },
            ..EndpointPolicy::default()
        };
        let c = NsdfClient::simulated_chaos(5, &plan, &policy).unwrap();
        // Writes and reads succeed despite a 20% injected fault rate: the
        // retry/hedge layers absorb the failures.
        for i in 0..20 {
            let key = format!("obj/{i}");
            c.upload("seal", &key, &vec![i as u8; 32 << 10]).unwrap();
        }
        for i in 0..20 {
            let key = format!("obj/{i}");
            assert_eq!(c.download("seal", &key).unwrap(), vec![i as u8; 32 << 10]);
        }
        let snap = c.obs().snapshot();
        assert!(snap.counter("seal.fault.injected") > 0, "faults were actually injected");
        assert!(snap.counter("seal.retry.retries") > 0, "retries absorbed them");
    }

    #[test]
    fn chaos_stack_batched_writes_survive_write_faults() {
        use nsdf_storage::FailScope;
        let plan = FaultPlan::new(77)
            .with_scope(FailScope::Writes)
            .with_fault_rate(0.2)
            .with_corrupt_rate(0.05);
        let policy = EndpointPolicy {
            retry: RetryPolicy { max_attempts: 6, ..RetryPolicy::default() },
            ..EndpointPolicy::default()
        };
        let c = NsdfClient::simulated_chaos(5, &plan, &policy).unwrap();
        let store = c.store("seal").unwrap();
        let keys: Vec<String> = (0..32).map(|i| format!("batch/{i}")).collect();
        let payloads: Vec<Vec<u8>> = (0..32).map(|i| vec![i as u8; 8 << 10]).collect();
        let items: Vec<(&str, &[u8])> =
            keys.iter().zip(&payloads).map(|(k, d)| (k.as_str(), d.as_slice())).collect();
        let metas = store.put_many(&items);
        assert!(metas.iter().all(|m| m.is_ok()), "retry + integrity absorb write faults");
        for (k, d) in &items {
            assert_eq!(&store.get(k).unwrap(), d, "stored bytes are the clean payload");
        }
        let snap = c.obs().snapshot();
        assert!(snap.counter("seal.fault.injected") > 0, "write faults were injected");
        assert!(snap.counter("seal.retry.retries") > 0, "the retry layer absorbed them");
    }

    #[test]
    fn chaos_endpoints_fail_independently_but_deterministically() {
        let run = || {
            let plan = FaultPlan::new(23).with_fault_rate(0.3);
            let c = NsdfClient::simulated_chaos(9, &plan, &EndpointPolicy::default()).unwrap();
            c.upload("dataverse", "x", &vec![1u8; 64 << 10]).unwrap();
            c.transfer("dataverse", "x", "seal", "x").unwrap();
            let snap = c.obs().snapshot();
            (
                c.clock().now_ns(),
                snap.counter("dataverse.fault.injected"),
                snap.counter("seal.fault.injected"),
                snap.to_json(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "chaos stack is fully seed-deterministic");
        // Per-endpoint seed salting: same plan, different draw streams.
        let key = |ep: &str| {
            let plan = FaultPlan::new(23).with_fault_rate(0.5);
            let c = NsdfClient::simulated_chaos(9, &plan, &EndpointPolicy::default()).unwrap();
            (0..16).map(|i| c.upload(ep, &format!("k{i}"), b"x").is_ok()).collect::<Vec<_>>()
        };
        assert_ne!(key("dataverse"), key("seal"), "endpoints draw independent fault streams");
    }

    #[test]
    fn chaos_breaker_opens_during_outage() {
        let plan = FaultPlan::new(3).outage(5.0, 60.0);
        let policy = EndpointPolicy {
            breaker: Some(BreakerPolicy {
                failure_threshold: 2,
                cooldown_secs: 10.0,
                success_threshold: 1,
            }),
            hedge: None,
            // No read cache: every download must cross the WAN, so the
            // outage is visible to the breaker.
            cache_bytes: 0,
            ..EndpointPolicy::default()
        };
        let c = NsdfClient::simulated_chaos(1, &plan, &policy).unwrap();
        c.upload("seal", "a", b"payload").unwrap();
        c.clock().advance_secs(10.0);
        // Enough failing reads to trip the breaker (each burns 3 attempts).
        for _ in 0..4 {
            assert!(c.download("seal", "a").is_err());
        }
        let snap = c.obs().snapshot();
        assert!(snap.counter("seal.breaker.opened") >= 1, "breaker opened during outage");
        assert!(snap.counter("seal.breaker.fast_failures") > 0, "open breaker shed requests");
        assert_eq!(snap.counter("dataverse.breaker.opened"), 0, "dataverse untouched");
    }
}
