//! Multi-tenant fleet simulation: thousands of concurrent trainee sessions
//! multiplexed over the shared modeled WAN, with QoS admission control.
//!
//! The paper's services exist to serve *fleets* of simultaneous users —
//! a tutorial cohort panning dashboards while ingest jobs stream new data
//! through the same commercial-cloud links. This module turns that into a
//! deterministic discrete-event simulation on the virtual clock:
//!
//! * **Open-loop arrivals**: every tenant draws Poisson inter-arrival
//!   times from its own seed stream (`derive_seed(seed, "tenant-k")`), so
//!   load keeps arriving whether or not the link keeps up — queueing delay
//!   emerges instead of being modeled. Per-interaction latency is
//!   *completion time minus intended arrival time*.
//! * **Mixed profiles**: viewers (pan + frame + speculative neighbor
//!   prefetch), players (time-slider playback + next-step prefetch), and
//!   bulk ingestors (`put_many` waves). Dataset popularity across the
//!   fleet is zipf-distributed, so the shared block cache sees realistic
//!   skew.
//! * **QoS on/off**: with [`SchedPolicy::qos_on`] the [`WanScheduler`]
//!   defers bulk waves past their token budget and sheds lagging
//!   prefetches (admitted prefetches carry a `CancelToken` deadline of the
//!   same length); with [`SchedPolicy::qos_off`] every wave is admitted on
//!   arrival — the baseline the fleet bench contrasts against.
//!
//! Every run is byte-deterministic: same seed and config give an identical
//! [`FleetReport`], including the serialized metrics snapshot. Each
//! viewer/player tenant chains an FNV digest over its frame bytes;
//! because frames are a pure function of dataset content (never of cache
//! state, shedding, or contention), a tenant's digest under full fleet
//! contention equals its digest run alone ([`FleetConfig::only_tenant`]) —
//! the differential oracle `tests/fleet.rs` pins down.
//!
//! [`WanScheduler`]: nsdf_storage::WanScheduler

use crate::client::{EndpointPolicy, FleetClient, NsdfClient};
use nsdf_compress::Codec;
use nsdf_idx::QuerySession;
use nsdf_idx::{Field, IdxDataset, IdxMeta};
use nsdf_storage::{
    Admission, DeclaredWave, FaultPlan, ObjectStore, Priority, SchedPolicy, TieredConfig,
};
use nsdf_util::{
    derive_seed, fnv1a64, samples_to_bytes, secs_to_ns, splitmix64, Box2i, DType, NsdfError,
    Raster, Result,
};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// Grid edge of every fleet dataset (128x128 f32).
const SIZE: usize = 128;
/// Samples per block (2^8 = 256 -> 64 blocks per timestep).
const BITS_PER_BLOCK: u32 = 8;
/// Timesteps per dataset (players cycle through them).
const TIMESTEPS: u32 = 4;
/// The single field every fleet dataset carries.
const FIELD: &str = "v";
/// Initial viewport every viewer/player session opens on.
const VIEW: Box2i = Box2i { x0: 40, y0: 40, x1: 88, y1: 88 };
/// Coarsest refinement level sessions start from.
const START_LEVEL: u32 = 8;
/// Level interactive frames are gathered at.
const FRAME_LEVEL: u32 = 12;
/// Cells a viewer pan moves per interaction.
const PAN_STEP: i64 = 8;

/// Shape and load of one simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Dashboard viewers: pan, frame, speculative neighbor prefetch.
    pub viewers: usize,
    /// Playback users: advance the time slider, frame, prefetch the next
    /// timestep.
    pub players: usize,
    /// Bulk ingest jobs: `put_many` waves of fresh objects.
    pub ingestors: usize,
    /// Remote endpoint the whole fleet shares (`"dataverse"` or `"seal"`).
    pub endpoint: String,
    /// Arrival-generation horizon in virtual seconds (the run drains every
    /// generated event, so it may end later than this).
    pub horizon_secs: f64,
    /// Number of distinct datasets tenants pick from.
    pub datasets: usize,
    /// Zipf skew of dataset popularity (higher = more concentrated).
    pub zipf_s: f64,
    /// Admission policy of the shared-WAN plane.
    pub sched: SchedPolicy,
    /// Optional scripted fault plan for the remote endpoints; `None` runs
    /// fault-free on the plain WAN + cache stack.
    pub chaos: Option<FaultPlan>,
    /// Resilience stack (and shared cache size) of the remote endpoints.
    pub endpoint_policy: EndpointPolicy,
    /// Schedule only this tenant's events (identities and seed streams of
    /// the full fleet are still generated) — the solo oracle the frame
    /// differential compares against.
    pub only_tenant: Option<usize>,
    /// Mean interactions per virtual second for each viewer.
    pub viewer_rate_hz: f64,
    /// Mean interactions per virtual second for each player.
    pub player_rate_hz: f64,
    /// Mean ingest waves per virtual second for each ingestor.
    pub ingest_rate_hz: f64,
    /// Objects per ingest wave.
    pub ingest_wave_blocks: u32,
    /// Bytes per ingested object.
    pub ingest_block_bytes: u64,
    /// Fair-share weight registered for every viewer. Interactive tenants
    /// only join the bulk denominator if they ever submit a bulk wave, so
    /// this is inert under the default workload.
    pub viewer_weight: u64,
    /// Fair-share weight registered for every player (see
    /// [`FleetConfig::viewer_weight`]).
    pub player_weight: u64,
    /// Fair-share weights assigned to ingestors round-robin (ingestor `i`
    /// gets `ingest_weights[i % len]`). Bulk link share splits
    /// proportionally to these, so `vec![1, 3]` gives the second ingestor
    /// 3x the first's sustained grant rate. Must be non-empty. The
    /// single-element default keeps every ingestor at the same share (the
    /// ratio is all that matters), matching historical behavior.
    pub ingest_weights: Vec<u64>,
    /// Shared persistent disk tier under every endpoint's RAM cache
    /// (`None` = RAM-only, the historical stack). All tenants share it:
    /// the first to pull a popular block pays the WAN, everyone after
    /// hits RAM or disk.
    pub disk: Option<TieredConfig>,
}

impl FleetConfig {
    /// A fleet of `tenants` with the default 70/20/10 viewer/player/
    /// ingestor mix (at least one ingestor from 10 tenants up), QoS on,
    /// fault-free, on the public-commons endpoint.
    pub fn sized(tenants: usize) -> FleetConfig {
        let ingestors = tenants / 10;
        let players = tenants / 5;
        FleetConfig {
            viewers: tenants - players - ingestors,
            players,
            ingestors,
            endpoint: "dataverse".into(),
            horizon_secs: 30.0,
            datasets: 4,
            zipf_s: 1.1,
            sched: SchedPolicy::qos_on(),
            chaos: None,
            endpoint_policy: EndpointPolicy::default(),
            only_tenant: None,
            viewer_rate_hz: 0.5,
            player_rate_hz: 0.5,
            ingest_rate_hz: 0.5,
            // 32 small objects per wave keeps ingest RTT-dominated: ~1.1 s
            // of link time on the public profile and ~0.25 s on the
            // private one, so ten or more ingestors at 0.5 Hz
            // oversubscribe either link — the contention regime the QoS
            // plane exists for — without large-fleet runs holding
            // gigabytes of payload in the backing store.
            ingest_wave_blocks: 32,
            ingest_block_bytes: 16 << 10,
            viewer_weight: 1,
            player_weight: 1,
            ingest_weights: vec![2],
            disk: None,
        }
    }

    /// Total tenant count across all profiles.
    pub fn tenants(&self) -> usize {
        self.viewers + self.players + self.ingestors
    }
}

/// Nearest-rank latency percentiles over one interaction class, in virtual
/// nanoseconds (exact integers, so reports compare bitwise).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Interactions in this class.
    pub count: u64,
    /// Median latency (virtual ns).
    pub p50_vns: u64,
    /// 99th percentile latency (virtual ns).
    pub p99_vns: u64,
    /// 99.9th percentile latency (virtual ns).
    pub p999_vns: u64,
    /// Worst latency (virtual ns).
    pub max_vns: u64,
}

impl LatencySummary {
    fn from_samples(mut v: Vec<u64>) -> LatencySummary {
        if v.is_empty() {
            return LatencySummary::default();
        }
        v.sort_unstable();
        let nearest = |q: f64| v[((q * v.len() as f64).ceil() as usize).max(1) - 1];
        LatencySummary {
            count: v.len() as u64,
            p50_vns: nearest(0.5),
            p99_vns: nearest(0.99),
            p999_vns: nearest(0.999),
            max_vns: *v.last().expect("non-empty"),
        }
    }
}

/// Everything one fleet run produced, byte-deterministic per (seed,
/// config).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Tenants the config describes (scheduled or not).
    pub tenants: usize,
    /// Whether QoS admission was enforced.
    pub qos: bool,
    /// Endpoint the fleet shared.
    pub endpoint: String,
    /// Events generated by the arrival processes.
    pub events_generated: u64,
    /// Events that ran to completion (generated = completed: deferral
    /// re-queues and prefetch shedding happen *inside* an interaction).
    pub events_completed: u64,
    /// Interactive frames delivered (viewers + players).
    pub frames: u64,
    /// Bulk ingest waves completed.
    pub ingest_waves: u64,
    /// Ingest objects whose final put still failed (0 unless chaos
    /// overwhelms the retry budget).
    pub ingest_errors: u64,
    /// Interactive (viewer + player) latency percentiles.
    pub interactive: LatencySummary,
    /// Bulk ingest latency percentiles (includes deferral wait).
    pub ingest: LatencySummary,
    /// Per-tenant FNV digest chain over delivered frame bytes
    /// (viewer/player tenants only).
    pub digests: BTreeMap<String, u64>,
    /// Actual WAN bytes attributed to each tenant by the scheduler.
    pub tenant_grants: BTreeMap<String, u64>,
    /// Per-tenant grants snapshotted when the event queue first crossed
    /// the arrival horizon. End-of-run grants equalize as the queue drains
    /// (every deferred wave eventually lands), so weight proportionality
    /// is visible here, not in [`FleetReport::tenant_grants`].
    pub grants_at_horizon: BTreeMap<String, u64>,
    /// Reads served by the shared persistent disk tier across both
    /// endpoints (0 without [`FleetConfig::disk`]).
    pub disk_hits: u64,
    /// Lowest token-bucket level ever observed (>= 0 by construction).
    pub min_bucket_vns: f64,
    /// `sched.waves_submitted` at the end of the run.
    pub sched_submitted: u64,
    /// `sched.waves_admitted` at the end of the run.
    pub sched_admitted: u64,
    /// `sched.waves_deferred` at the end of the run (deferral re-asks, so
    /// one wave may defer several times).
    pub sched_deferred: u64,
    /// `sched.waves_shed` at the end of the run.
    pub sched_shed: u64,
    /// Total link time the scheduler accounted (virtual ns).
    pub sched_service_vns: u64,
    /// Total WAN bytes the scheduler attributed to tenants.
    pub sched_granted_bytes: u64,
    /// Total link busy time the WAN models charged (virtual ns).
    pub wan_busy_vns: u64,
    /// Total bytes the WAN models moved (down + up, both endpoints).
    pub wan_bytes: u64,
    /// Virtual clock when the run drained.
    pub final_vns: u64,
    /// Serialized metrics snapshot (byte-stable across identical runs).
    pub metrics_json: String,
}

/// Deterministic per-tenant draw stream (splitmix64 counter walk).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.0)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TenantKind {
    Viewer,
    Player,
    Ingestor,
}

/// One scripted interaction; all randomness is resolved at generation
/// time, so execution order cannot perturb a tenant's draw stream.
#[derive(Debug, Clone, Copy)]
enum Action {
    Pan { dx: i64, dy: i64 },
    TimeStep,
    Ingest { wave: u32 },
}

struct TenantPlan {
    name: String,
    kind: TenantKind,
    dataset: usize,
    /// (arrival virtual ns relative to trace start, action).
    events: Vec<(u64, Action)>,
}

/// Per-tenant live state during the run.
enum Runtime {
    Viewer {
        sess: QuerySession<f32>,
    },
    Player {
        sess: QuerySession<f32>,
    },
    Ingestor {
        store: Arc<dyn ObjectStore>,
    },
    /// Filtered out by [`FleetConfig::only_tenant`].
    Absent,
}

fn kind_of(k: usize, cfg: &FleetConfig) -> TenantKind {
    if k < cfg.viewers {
        TenantKind::Viewer
    } else if k < cfg.viewers + cfg.players {
        TenantKind::Player
    } else {
        TenantKind::Ingestor
    }
}

/// Pick a dataset index from the zipf cumulative weights.
fn zipf_pick(u: f64, cum: &[f64]) -> usize {
    let total = *cum.last().expect("at least one dataset");
    cum.iter().position(|&c| c >= u * total).unwrap_or(cum.len() - 1)
}

/// Generate tenant `k`'s identity and full arrival script. Every draw
/// comes from `derive_seed(seed, "tenant-k")`, so the script is identical
/// whether the tenant runs in a full fleet or alone.
fn plan_tenant(seed: u64, k: usize, cfg: &FleetConfig, zipf_cum: &[f64]) -> TenantPlan {
    let name = format!("t{k:04}");
    let mut rng = Rng::new(derive_seed(seed, &format!("tenant-{k}")));
    let kind = kind_of(k, cfg);
    let dataset = zipf_pick(rng.next_f64(), zipf_cum);
    let rate = match kind {
        TenantKind::Viewer => cfg.viewer_rate_hz,
        TenantKind::Player => cfg.player_rate_hz,
        TenantKind::Ingestor => cfg.ingest_rate_hz,
    };
    let mut events = Vec::new();
    if rate > 0.0 {
        let mut t = 0.0;
        let mut wave = 0u32;
        loop {
            t += -(1.0 - rng.next_f64()).ln() / rate;
            if t > cfg.horizon_secs {
                break;
            }
            let action = match kind {
                TenantKind::Viewer => match rng.next_u64() % 4 {
                    0 => Action::Pan { dx: PAN_STEP, dy: 0 },
                    1 => Action::Pan { dx: -PAN_STEP, dy: 0 },
                    2 => Action::Pan { dx: 0, dy: PAN_STEP },
                    _ => Action::Pan { dx: 0, dy: -PAN_STEP },
                },
                TenantKind::Player => Action::TimeStep,
                TenantKind::Ingestor => {
                    wave += 1;
                    Action::Ingest { wave: wave - 1 }
                }
            };
            events.push((secs_to_ns(t), action));
        }
    }
    TenantPlan { name, kind, dataset, events }
}

/// Seed `cfg.datasets` synthetic datasets straight into the endpoint's
/// backing store (setup, not measured WAN traffic).
fn seed_datasets(fc: &FleetClient, cfg: &FleetConfig) -> Result<()> {
    let mem = fc.backing(&cfg.endpoint)?;
    for j in 0..cfg.datasets {
        let meta = IdxMeta::new_2d(
            format!("d{j}"),
            SIZE as u64,
            SIZE as u64,
            vec![Field::new(FIELD, DType::F32)?],
            BITS_PER_BLOCK,
            Codec::Raw,
        )?
        .with_timesteps(TIMESTEPS)?;
        let ds =
            IdxDataset::create(mem.clone() as Arc<dyn ObjectStore>, &format!("fleet/d{j}"), meta)?;
        for t in 0..TIMESTEPS {
            let data = Raster::from_fn(SIZE, SIZE, move |x, y| {
                (y * SIZE + x) as f32 + t as f32 * 65536.0 + j as f32 * 1.0e7
            });
            ds.write_raster(FIELD, t, &data)?;
        }
    }
    Ok(())
}

/// Run one fleet to completion and report.
///
/// Sequential discrete-event loop: events pop in `(time, tier, seq)`
/// order (`(time, seq)` with QoS off), the clock advances to each event's
/// scheduled instant (a no-op once the link is backlogged), and the
/// interaction runs atomically on the shared clock. Deferred bulk waves
/// re-enter the queue at the scheduler's promised retry instant while
/// keeping their original deadline for latency accounting.
pub fn run_fleet(seed: u64, cfg: &FleetConfig) -> Result<FleetReport> {
    let tenants = cfg.tenants();
    if tenants == 0 {
        return Err(NsdfError::invalid("fleet has no tenants"));
    }
    if cfg.datasets == 0 {
        return Err(NsdfError::invalid("fleet needs at least one dataset"));
    }
    if let Some(k) = cfg.only_tenant {
        if k >= tenants {
            return Err(NsdfError::invalid(format!("only_tenant {k} out of range 0..{tenants}")));
        }
    }
    if cfg.ingest_weights.is_empty() {
        return Err(NsdfError::invalid("ingest_weights must be non-empty"));
    }

    let fc = NsdfClient::simulated_fleet(
        seed,
        cfg.sched.clone(),
        cfg.chaos.as_ref(),
        &cfg.endpoint_policy,
        cfg.disk.as_ref(),
    )?;
    let clock = fc.client().clock().clone();
    let obs = fc.client().obs().clone();
    let sched = Arc::clone(fc.scheduler());
    seed_datasets(&fc, cfg)?;

    // Identity and arrival scripts for the whole fleet (scheduled or not,
    // so `only_tenant` sees the identical per-tenant stream).
    let zipf_cum: Vec<f64> = (0..cfg.datasets)
        .scan(0.0, |acc, j| {
            *acc += 1.0 / ((j + 1) as f64).powf(cfg.zipf_s);
            Some(*acc)
        })
        .collect();
    let plans: Vec<TenantPlan> =
        (0..tenants).map(|k| plan_tenant(seed, k, cfg, &zipf_cum)).collect();
    let scheduled = |k: usize| cfg.only_tenant.is_none_or(|o| o == k);

    // Register tenants and open their runtimes in index order.
    let mut runtimes = Vec::with_capacity(tenants);
    for (k, plan) in plans.iter().enumerate() {
        if !scheduled(k) {
            runtimes.push(Runtime::Absent);
            continue;
        }
        let tier = match plan.kind {
            TenantKind::Viewer | TenantKind::Player => Priority::Interactive,
            TenantKind::Ingestor => Priority::Bulk,
        };
        let weight = match plan.kind {
            TenantKind::Viewer => cfg.viewer_weight,
            TenantKind::Player => cfg.player_weight,
            TenantKind::Ingestor => {
                let i = k - cfg.viewers - cfg.players;
                cfg.ingest_weights[i % cfg.ingest_weights.len()]
            }
        };
        sched.register_tenant(&plan.name, tier, weight);
        runtimes.push(match plan.kind {
            TenantKind::Ingestor => Runtime::Ingestor {
                store: fc.tenant_store(&cfg.endpoint, &plan.name)? as Arc<dyn ObjectStore>,
            },
            _ => {
                let mut sess = fc.open_tenant_session(
                    &cfg.endpoint,
                    &plan.name,
                    &format!("fleet/d{}", plan.dataset),
                    FIELD,
                )?;
                sess.set_view(VIEW, START_LEVEL, FRAME_LEVEL)?;
                match plan.kind {
                    TenantKind::Viewer => Runtime::Viewer { sess },
                    _ => Runtime::Player { sess },
                }
            }
        });
    }

    // Session opens advanced the clock; deadlines start at the trace base
    // so the first arrivals are not born late.
    let base = clock.now_ns();
    struct Event {
        due_vns: u64,
        tenant: usize,
        action: Action,
    }
    let mut events = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, u8, u64)>> = BinaryHeap::new();
    for (k, plan) in plans.iter().enumerate() {
        if !scheduled(k) {
            continue;
        }
        for &(arr, action) in &plan.events {
            let due = base + arr;
            let tier = match (cfg.sched.qos, action) {
                (true, Action::Ingest { .. }) => Priority::Bulk.rank(),
                _ => 0,
            };
            heap.push(Reverse((due, tier, events.len() as u64)));
            events.push(Event { due_vns: due, tenant: k, action });
        }
    }
    let events_generated = events.len() as u64;

    let shed_lag_vns = secs_to_ns(cfg.sched.shed_lag_secs);
    let ingest_decl = DeclaredWave::write(
        cfg.ingest_wave_blocks,
        cfg.ingest_wave_blocks as u64 * cfg.ingest_block_bytes,
    );
    let mut interactive_lat = Vec::new();
    let mut ingest_lat = Vec::new();
    let mut digests: BTreeMap<String, u64> = BTreeMap::new();
    let (mut frames, mut ingest_waves, mut ingest_errors, mut completed) = (0u64, 0u64, 0u64, 0u64);
    let horizon_vns = base + secs_to_ns(cfg.horizon_secs);
    let mut grants_at_horizon: Option<BTreeMap<String, u64>> = None;

    while let Some(Reverse((at, tier, seq))) = heap.pop() {
        let ev = &events[seq as usize];
        if grants_at_horizon.is_none() && at >= horizon_vns {
            // First event at/past the horizon: snapshot the per-tenant
            // grants while the link is still contended. (By drain time
            // every deferred wave has landed and grants equalize.)
            grants_at_horizon = Some(sched.tenant_grants());
        }
        clock.advance_to_ns(at);
        let name = plans[ev.tenant].name.as_str();
        // One digest-and-account step shared by viewers and players.
        let mut deliver =
            |sess: &mut QuerySession<f32>, digests: &mut BTreeMap<String, u64>| -> Result<()> {
                sched.admit(
                    &cfg.endpoint,
                    name,
                    Priority::Interactive,
                    &DeclaredWave::read(8, 8 << 10),
                    ev.due_vns,
                );
                let frame = sess.frame_at(FRAME_LEVEL)?;
                debug_assert!(!frame.cancelled, "demand frames never carry a cancel deadline");
                let d = digests.entry(name.to_string()).or_insert(0);
                *d = splitmix64(*d ^ fnv1a64(&samples_to_bytes(frame.raster.data())));
                frames += 1;
                interactive_lat.push(clock.now_ns().saturating_sub(ev.due_vns));
                Ok(())
            };
        match ev.action {
            Action::Pan { dx, dy } => {
                let Runtime::Viewer { sess } = &mut runtimes[ev.tenant] else {
                    unreachable!("pan events only target viewers")
                };
                sess.pan(dx, dy)?;
                deliver(sess, &mut digests)?;
                completed += 1;
                let decl = DeclaredWave::read(8, 8 << 10);
                if let Admission::Admit =
                    sched.admit(&cfg.endpoint, name, Priority::Prefetch, &decl, ev.due_vns)
                {
                    sess.cancel_token().cancel_at(clock.now_ns() + shed_lag_vns);
                    sess.prefetch_pan_neighbor(FRAME_LEVEL)?;
                    sess.reset_cancel();
                }
            }
            Action::TimeStep => {
                let Runtime::Player { sess } = &mut runtimes[ev.tenant] else {
                    unreachable!("time-step events only target players")
                };
                let next = (sess.time() + 1) % TIMESTEPS;
                sess.set_time(next)?;
                deliver(sess, &mut digests)?;
                completed += 1;
                let decl = DeclaredWave::read(8, 8 << 10);
                if let Admission::Admit =
                    sched.admit(&cfg.endpoint, name, Priority::Prefetch, &decl, ev.due_vns)
                {
                    sess.cancel_token().cancel_at(clock.now_ns() + shed_lag_vns);
                    sess.prefetch_time((next + 1) % TIMESTEPS, FRAME_LEVEL)?;
                    sess.reset_cancel();
                }
            }
            Action::Ingest { wave } => {
                let Runtime::Ingestor { store } = &runtimes[ev.tenant] else {
                    unreachable!("ingest events only target ingestors")
                };
                match sched.admit(&cfg.endpoint, name, Priority::Bulk, &ingest_decl, ev.due_vns) {
                    Admission::Admit | Admission::Shed => {
                        store.set_wave_priority(Priority::Bulk);
                        let keys: Vec<String> = (0..cfg.ingest_wave_blocks)
                            .map(|i| format!("ingest/{name}/w{wave:06}/b{i:02}"))
                            .collect();
                        let payloads: Vec<Vec<u8>> = (0..cfg.ingest_wave_blocks)
                            .map(|i| {
                                let fill =
                                    splitmix64(ev.tenant as u64 ^ ((wave as u64) << 16) ^ i as u64);
                                vec![fill as u8; cfg.ingest_block_bytes as usize]
                            })
                            .collect();
                        let items: Vec<(&str, &[u8])> = keys
                            .iter()
                            .zip(&payloads)
                            .map(|(k, d)| (k.as_str(), d.as_slice()))
                            .collect();
                        ingest_errors +=
                            store.put_many(&items).iter().filter(|m| m.is_err()).count() as u64;
                        ingest_waves += 1;
                        ingest_lat.push(clock.now_ns().saturating_sub(ev.due_vns));
                        completed += 1;
                    }
                    Admission::Defer { retry_at_vns } => {
                        heap.push(Reverse((retry_at_vns.max(at + 1), tier, seq)));
                    }
                }
            }
        }
    }

    let snap = obs.snapshot();
    let remote =
        |m: &str| snap.counter(&format!("dataverse.{m}")) + snap.counter(&format!("seal.{m}"));
    Ok(FleetReport {
        tenants,
        qos: cfg.sched.qos,
        endpoint: cfg.endpoint.clone(),
        events_generated,
        events_completed: completed,
        frames,
        ingest_waves,
        ingest_errors,
        interactive: LatencySummary::from_samples(interactive_lat),
        ingest: LatencySummary::from_samples(ingest_lat),
        digests,
        tenant_grants: sched.tenant_grants(),
        grants_at_horizon: grants_at_horizon.unwrap_or_else(|| sched.tenant_grants()),
        disk_hits: remote("disk.hits"),
        min_bucket_vns: sched.min_bucket_vns(),
        sched_submitted: snap.counter("sched.waves_submitted"),
        sched_admitted: snap.counter("sched.waves_admitted"),
        sched_deferred: snap.counter("sched.waves_deferred"),
        sched_shed: snap.counter("sched.waves_shed"),
        sched_service_vns: snap.counter("sched.service_vns"),
        sched_granted_bytes: snap.counter("sched.granted_bytes"),
        wan_busy_vns: remote("wan.busy_vns"),
        wan_bytes: remote("wan.bytes_down") + remote("wan.bytes_up"),
        final_vns: clock.now_ns(),
        metrics_json: snap.to_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        let mut cfg = FleetConfig::sized(10);
        cfg.horizon_secs = 6.0;
        cfg
    }

    #[test]
    fn fleet_run_is_deterministic_and_conserves_accounting() {
        let a = run_fleet(11, &small()).unwrap();
        let b = run_fleet(11, &small()).unwrap();
        assert_eq!(a, b, "same seed and config must reproduce bitwise");
        assert!(a.events_generated > 0 && a.events_generated == a.events_completed);
        assert!(a.frames > 0 && a.ingest_waves > 0);
        assert_eq!(a.ingest_errors, 0, "fault-free run");
        // Fault-free: scheduler accounting reconciles exactly with the WAN.
        assert_eq!(a.sched_service_vns, a.wan_busy_vns);
        assert_eq!(a.sched_granted_bytes, a.wan_bytes);
        assert_eq!(a.tenant_grants.values().sum::<u64>(), a.wan_bytes);
        assert!(a.min_bucket_vns >= 0.0);
    }

    #[test]
    fn different_seeds_give_different_traffic() {
        let a = run_fleet(1, &small()).unwrap();
        let b = run_fleet(2, &small()).unwrap();
        assert_ne!(a.final_vns, b.final_vns);
        assert_ne!(a.digests, b.digests);
    }

    #[test]
    fn only_tenant_schedules_one_tenant() {
        let mut cfg = small();
        cfg.only_tenant = Some(0);
        let r = run_fleet(11, &cfg).unwrap();
        assert_eq!(r.digests.len(), 1, "exactly the solo viewer produced frames");
        assert_eq!(r.tenant_grants.len(), 1);
        let full = run_fleet(11, &small()).unwrap();
        assert_eq!(
            r.digests["t0000"], full.digests["t0000"],
            "frames are a pure function of dataset content, not contention"
        );
    }
}
