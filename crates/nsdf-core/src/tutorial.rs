//! Tutorial delivery simulation: cohorts, sessions, and the survey —
//! the apparatus behind Table I and Fig. 8.
//!
//! The paper's evaluation is attendance (Table I) and Likert survey
//! responses (Fig. 8). Attendance is published data and is reproduced
//! verbatim by [`Session::paper_sessions`]. The *distribution* of survey
//! responses is published only as charts; [`SurveyModel`] is an explicit,
//! seeded generative model — participants with a background-dependent
//! rating tendency answer each question on a 1–5 scale — calibrated so the
//! aggregate matches the paper's "overwhelmingly positive" shape. The
//! model is honest about being a model: it exists so the figure-generation
//! code path (aggregation, histograms, per-audience breakdowns) is real
//! and testable, not so the numbers pretend to be measurements.

use nsdf_util::{derive_seed, splitmix64, Histogram, NsdfError, Result};

/// Professional background of a participant (Table I's audience column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Background {
    /// Computer science experts.
    ComputerScience,
    /// Domain science experts.
    DomainScience,
    /// General public.
    GeneralPublic,
    /// Undergraduate and graduate students.
    Student,
}

impl Background {
    /// Display name matching the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            Background::ComputerScience => "Computer science experts",
            Background::DomainScience => "Domain science experts",
            Background::GeneralPublic => "General public",
            Background::Student => "Undergraduate and graduate students",
        }
    }
}

/// Delivery modality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// In-person session.
    InPerson,
    /// Virtual session (Zoom).
    Virtual,
}

impl Modality {
    /// Display name matching the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            Modality::InPerson => "In-person",
            Modality::Virtual => "Virtual",
        }
    }
}

/// One tutorial delivery (a row of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Venue name.
    pub venue: String,
    /// Delivery modality.
    pub modality: Modality,
    /// Audience background.
    pub audience: Background,
    /// Number of participants.
    pub participants: u32,
}

impl Session {
    /// The four sessions the paper reports (Table I), verbatim.
    pub fn paper_sessions() -> Vec<Session> {
        vec![
            Session {
                venue: "National Science Data Fabric All Hands Meeting, San Diego Supercomputer Center".into(),
                modality: Modality::InPerson,
                audience: Background::ComputerScience,
                participants: 25,
            },
            Session {
                venue: "Research group, University of Delaware".into(),
                modality: Modality::Virtual,
                audience: Background::DomainScience,
                participants: 15,
            },
            Session {
                venue: "National Science Data Fabric Webinar".into(),
                modality: Modality::Virtual,
                audience: Background::GeneralPublic,
                participants: 36,
            },
            Session {
                venue: "Class at the University of Tennessee Knoxville (undergraduate and graduate students)".into(),
                modality: Modality::InPerson,
                audience: Background::Student,
                participants: 32,
            },
        ]
    }

    /// Total participants across sessions (the paper reports 108).
    pub fn total_participants(sessions: &[Session]) -> u32 {
        sessions.iter().map(|s| s.participants).sum()
    }
}

/// The four survey questions of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurveyQuestion {
    /// (a) The study case demonstrated the visualization and analysis
    /// capabilities of NSDF.
    CaseDemonstratedCapabilities,
    /// (b) The tutorial methodology can be generalized for other datasets
    /// and study cases.
    MethodologyGeneralizes,
    /// (c) The dashboard enabled meaningful visualization and analysis.
    DashboardMeaningful,
    /// (d) The workflow was easy to follow and understand.
    EasyToFollow,
}

impl SurveyQuestion {
    /// All questions in figure order.
    pub fn all() -> [SurveyQuestion; 4] {
        [
            SurveyQuestion::CaseDemonstratedCapabilities,
            SurveyQuestion::MethodologyGeneralizes,
            SurveyQuestion::DashboardMeaningful,
            SurveyQuestion::EasyToFollow,
        ]
    }

    /// Figure panel label.
    pub fn panel(&self) -> &'static str {
        match self {
            SurveyQuestion::CaseDemonstratedCapabilities => "8a",
            SurveyQuestion::MethodologyGeneralizes => "8b",
            SurveyQuestion::DashboardMeaningful => "8c",
            SurveyQuestion::EasyToFollow => "8d",
        }
    }

    /// Question text (abridged from the figure captions).
    pub fn text(&self) -> &'static str {
        match self {
            SurveyQuestion::CaseDemonstratedCapabilities => {
                "The study case demonstrated the visualization and analysis capabilities of NSDF"
            }
            SurveyQuestion::MethodologyGeneralizes => {
                "The tutorial methodology can be generalized for other datasets and study cases"
            }
            SurveyQuestion::DashboardMeaningful => {
                "The dashboard enabled meaningful visualization and analysis"
            }
            SurveyQuestion::EasyToFollow => "The workflow was easy to follow and understand",
        }
    }
}

/// Aggregated responses for one question: counts of ratings 1..=5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuestionTally {
    /// The question.
    pub question: SurveyQuestion,
    /// `counts[r-1]` = number of participants answering `r`.
    pub counts: [u32; 5],
}

impl QuestionTally {
    /// Total responses.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Mean rating.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u32 = self.counts.iter().enumerate().map(|(i, &c)| (i as u32 + 1) * c).sum();
        sum as f64 / total as f64
    }

    /// Fraction answering 4 or 5 ("agree"/"strongly agree").
    pub fn positive_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.counts[3] + self.counts[4]) as f64 / total as f64
    }

    /// Render as an ASCII histogram for the `reproduce` harness.
    pub fn ascii(&self) -> String {
        let mut h = Histogram::new(0.5, 5.5, 5).expect("static bounds");
        for (i, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                h.push(i as f64 + 1.0);
            }
        }
        h.ascii(40)
    }
}

/// The generative survey model.
#[derive(Debug, Clone)]
pub struct SurveyModel {
    seed: u64,
}

impl SurveyModel {
    /// Model with the given seed.
    pub fn new(seed: u64) -> SurveyModel {
        SurveyModel { seed }
    }

    /// Rating probabilities (1..=5) for a background on a question.
    ///
    /// Calibration: all audiences skew positive (the paper's result);
    /// experts are slightly more reserved on generality, students rate
    /// ease-of-following highest (the quotes in §V-A).
    fn distribution(background: Background, question: SurveyQuestion) -> [f64; 5] {
        use Background as B;
        use SurveyQuestion as Q;
        match (background, question) {
            (B::ComputerScience, Q::MethodologyGeneralizes) => [0.02, 0.04, 0.16, 0.44, 0.34],
            (B::ComputerScience, _) => [0.01, 0.03, 0.11, 0.40, 0.45],
            (B::DomainScience, Q::DashboardMeaningful) => [0.01, 0.02, 0.09, 0.38, 0.50],
            (B::DomainScience, _) => [0.01, 0.03, 0.11, 0.40, 0.45],
            (B::GeneralPublic, _) => [0.02, 0.05, 0.18, 0.40, 0.35],
            (B::Student, Q::EasyToFollow) => [0.01, 0.02, 0.07, 0.30, 0.60],
            (B::Student, _) => [0.01, 0.04, 0.15, 0.40, 0.40],
        }
    }

    /// Sample one rating in 1..=5.
    fn sample(&self, background: Background, question: SurveyQuestion, participant: u64) -> u32 {
        let dist = Self::distribution(background, question);
        let key = derive_seed(self.seed, &format!("{background:?}/{question:?}"));
        let u = splitmix64(key ^ participant.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as f64
            / u64::MAX as f64;
        let mut cum = 0.0;
        for (i, p) in dist.iter().enumerate() {
            cum += p;
            if u < cum {
                return i as u32 + 1;
            }
        }
        5
    }

    /// Simulate the survey across `sessions`, producing one tally per
    /// question (all sessions pooled, as the paper reports).
    pub fn run(&self, sessions: &[Session]) -> Result<Vec<QuestionTally>> {
        if sessions.is_empty() {
            return Err(NsdfError::invalid("no sessions to survey"));
        }
        let mut tallies: Vec<QuestionTally> = SurveyQuestion::all()
            .into_iter()
            .map(|q| QuestionTally { question: q, counts: [0; 5] })
            .collect();
        let mut participant = 0u64;
        for session in sessions {
            for _ in 0..session.participants {
                for tally in &mut tallies {
                    let r = self.sample(session.audience, tally.question, participant);
                    tally.counts[(r - 1) as usize] += 1;
                }
                participant += 1;
            }
        }
        Ok(tallies)
    }
}

/// Format Table I as aligned text (the `reproduce` harness's output).
pub fn format_table1(sessions: &[Session]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<88} | {:<9} | {:<36} | {}\n",
        "Tutorial", "Modality", "Audience", "Participants"
    ));
    out.push_str(&"-".repeat(150));
    out.push('\n');
    for s in sessions {
        out.push_str(&format!(
            "{:<88} | {:<9} | {:<36} | {}\n",
            s.venue,
            s.modality.label(),
            s.audience.label(),
            s.participants
        ));
    }
    out.push_str(&format!(
        "{:<88} | {:<9} | {:<36} | {}\n",
        "Total Participants",
        "",
        "",
        Session::total_participants(sessions)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_totals() {
        let sessions = Session::paper_sessions();
        assert_eq!(sessions.len(), 4);
        assert_eq!(Session::total_participants(&sessions), 108);
        assert_eq!(sessions[0].participants, 25);
        assert_eq!(sessions[2].audience, Background::GeneralPublic);
        assert_eq!(sessions[3].modality, Modality::InPerson);
    }

    #[test]
    fn table1_formatting_contains_all_rows() {
        let text = format_table1(&Session::paper_sessions());
        assert!(text.contains("San Diego Supercomputer Center"));
        assert!(text.contains("108"));
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn survey_is_deterministic_and_complete() {
        let sessions = Session::paper_sessions();
        let a = SurveyModel::new(42).run(&sessions).unwrap();
        let b = SurveyModel::new(42).run(&sessions).unwrap();
        assert_eq!(a, b);
        for tally in &a {
            assert_eq!(tally.total(), 108, "{:?}", tally.question);
        }
        let c = SurveyModel::new(43).run(&sessions).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn survey_is_overwhelmingly_positive() {
        let tallies = SurveyModel::new(42).run(&Session::paper_sessions()).unwrap();
        for t in &tallies {
            assert!(t.positive_fraction() > 0.65, "{:?}: {}", t.question, t.positive_fraction());
            assert!(t.mean() > 4.0, "{:?}: mean {}", t.question, t.mean());
        }
    }

    #[test]
    fn students_rate_ease_highest() {
        // Run only the student session and compare question means.
        let student_session = vec![Session {
            venue: "class".into(),
            modality: Modality::InPerson,
            audience: Background::Student,
            participants: 3200, // large N to beat sampling noise
        }];
        let tallies = SurveyModel::new(7).run(&student_session).unwrap();
        let ease =
            tallies.iter().find(|t| t.question == SurveyQuestion::EasyToFollow).unwrap().mean();
        for t in &tallies {
            if t.question != SurveyQuestion::EasyToFollow {
                assert!(ease > t.mean(), "{:?}", t.question);
            }
        }
    }

    #[test]
    fn tally_statistics() {
        let t = QuestionTally { question: SurveyQuestion::EasyToFollow, counts: [0, 0, 2, 4, 4] };
        assert_eq!(t.total(), 10);
        assert!((t.mean() - 4.2).abs() < 1e-12);
        assert!((t.positive_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(t.ascii().lines().count(), 5);
    }

    #[test]
    fn empty_sessions_rejected() {
        assert!(SurveyModel::new(1).run(&[]).is_err());
    }

    #[test]
    fn question_metadata() {
        assert_eq!(SurveyQuestion::all().len(), 4);
        assert_eq!(SurveyQuestion::EasyToFollow.panel(), "8d");
        assert!(SurveyQuestion::DashboardMeaningful.text().contains("dashboard"));
    }
}
