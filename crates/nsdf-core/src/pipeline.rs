//! The four-step tutorial workflow (paper §IV, Figs. 3–4): data
//! generation → conversion to IDX → static visualization/validation →
//! interactive visualization & analysis — as one executable, instrumented
//! pipeline over an [`NsdfClient`].
//!
//! Timing model: storage operations charge the shared virtual clock
//! through the WAN simulation automatically; compute stages charge their
//! *measured wall time* to the same clock, so the provenance log reads as
//! one coherent end-to-end timeline.

use crate::client::NsdfClient;
use nsdf_compress::{Codec, CodecPolicy};
use nsdf_dashboard::{Colormap, Dashboard, FrameInfo, RangeMode};
use nsdf_geotiled::{compute_terrain_tiled_obs, DemConfig, Sun, TerrainParam, TilePlan};
use nsdf_idx::{Field, IdxDataset, IdxMeta, WriteStats};
use nsdf_tiff::{read_tiff, write_tiff, TiffCompression};
use nsdf_util::{AccuracyReport, Box2i, DType, NsdfError, Raster, Result};
use nsdf_workflow::{Artifact, Provenance, RunContext, Workflow};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one tutorial run.
#[derive(Debug, Clone)]
pub struct TutorialConfig {
    /// DEM width in pixels.
    pub width: usize,
    /// DEM height in pixels.
    pub height: usize,
    /// Master seed.
    pub seed: u64,
    /// GEOtiled tile grid.
    pub tiles: (usize, usize),
    /// Worker threads for tiled computation.
    pub threads: usize,
    /// Block codec policy for the IDX dataset (static or adaptive).
    pub codec: CodecPolicy,
    /// log2 samples per IDX block.
    pub bits_per_block: u32,
    /// Blocks uploaded per `put_many` batch during Step 2's conversion.
    pub write_concurrency: usize,
    /// Storage endpoint holding the TIFFs and the IDX dataset
    /// (`"local"`, `"dataverse"`, or `"seal"` on a simulated client).
    pub storage_endpoint: String,
    /// Dashboard viewport size in pixels.
    pub viewport_px: usize,
}

impl TutorialConfig {
    /// A Tennessee-scale run that completes in seconds.
    pub fn small(seed: u64) -> TutorialConfig {
        TutorialConfig {
            width: 512,
            height: 256,
            seed,
            tiles: (4, 2),
            threads: 4,
            codec: CodecPolicy::Static(Codec::LzssHuff { sample_size: 4 }),
            bits_per_block: 12,
            write_concurrency: 8,
            storage_endpoint: "seal".into(),
            viewport_px: 256,
        }
    }
}

/// One recorded dashboard interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Interaction {
    /// Interaction label (`"overview"`, `"zoom"`, ...).
    pub label: String,
    /// Virtual seconds the interaction took (storage time).
    pub virtual_secs: f64,
    /// Frame metadata, when the interaction rendered one.
    pub frame: Option<FrameInfo>,
}

/// Everything a tutorial run produces.
#[derive(Debug)]
pub struct TutorialReport {
    /// Provenance log with per-step artifacts and timings.
    pub provenance: Provenance,
    /// Total bytes of the four TIFFs (Step 1 output).
    pub tiff_bytes: u64,
    /// Total stored bytes of the IDX dataset (Step 2 output).
    pub idx_bytes: u64,
    /// Merged ingest accounting across Step 2's per-parameter writes.
    pub ingest: WriteStats,
    /// Per-parameter accuracy of IDX-read-back vs the original rasters
    /// (Step 3's validation).
    pub accuracy: Vec<(TerrainParam, AccuracyReport)>,
    /// Scripted dashboard interactions (Step 4).
    pub interactions: Vec<Interaction>,
    /// End-to-end virtual seconds.
    pub total_virtual_secs: f64,
}

impl TutorialReport {
    /// IDX size as a fraction of TIFF size — the §IV-B "~20 % smaller"
    /// number is `1 - size_ratio`.
    pub fn size_ratio(&self) -> f64 {
        if self.tiff_bytes == 0 {
            1.0
        } else {
            self.idx_bytes as f64 / self.tiff_bytes as f64
        }
    }

    /// True when every parameter validated bit-exactly in Step 3.
    pub fn validation_exact(&self) -> bool {
        !self.accuracy.is_empty() && self.accuracy.iter().all(|(_, r)| r.is_exact())
    }
}

/// Run the four-step workflow. See module docs for the timing model.
pub fn run_tutorial(client: &NsdfClient, cfg: &TutorialConfig) -> Result<TutorialReport> {
    if cfg.width == 0 || cfg.height == 0 {
        return Err(NsdfError::invalid("tutorial grid must be non-empty"));
    }
    let store = client.store(&cfg.storage_endpoint)?;
    let clock = client.clock().clone();
    let obs = client.obs().scoped("tutorial");
    let t_start = clock.now_secs();

    let mut wf = Workflow::new("nsdf-tutorial");
    let cfg1 = cfg.clone();
    let store1 = store.clone();
    let obs1 = obs.clone();

    // ---- Step 1: data generation (GEOtiled) -------------------------------
    wf.add_step("1-data-generation", &[], &[], move |ctx| {
        let _step_span = obs1.span("1-data-generation");
        let wall = Instant::now();
        let dem = DemConfig::conus_like(cfg1.width, cfg1.height, cfg1.seed).generate();
        let plan = TilePlan::new(cfg1.tiles.0, cfg1.tiles.1, 1)?;
        let mut artifacts = Vec::new();
        let mut rasters = Vec::new();
        for param in TerrainParam::all() {
            let (raster, _) =
                compute_terrain_tiled_obs(&dem, param, Sun::default(), &plan, cfg1.threads, &obs1)?;
            rasters.push((param, raster));
        }
        ctx.clock().advance_secs(wall.elapsed().as_secs_f64());
        // Write the TIFFs to storage (WAN time charged by the store).
        for (param, raster) in &rasters {
            let tiff = write_tiff(raster, TiffCompression::None)?;
            let key = format!("tutorial/tiff/{}.tif", param.name());
            store1.put(&key, &tiff)?;
            artifacts.push(Artifact::of_bytes(format!("{}.tif", param.name()), &tiff, &key));
        }
        ctx.put("rasters", rasters);
        Ok(artifacts)
    })?;

    // ---- Step 2: conversion to IDX ----------------------------------------
    let cfg2 = cfg.clone();
    let store2 = store.clone();
    let obs2 = obs.clone();
    wf.add_step(
        "2-convert-to-idx",
        &["1-data-generation"],
        &["elevation.tif", "slope.tif", "aspect.tif", "hillshade.tif"],
        move |ctx| {
            let _step_span = obs2.span("2-convert-to-idx");
            // Read the TIFFs back from storage — the conversion consumes the
            // stored artifacts, as in Fig. 3, not in-memory shortcuts.
            let mut fields = Vec::new();
            for param in TerrainParam::all() {
                fields.push(Field::new(param.name(), DType::F32)?);
            }
            let rasters = ctx.get::<Vec<(TerrainParam, Raster<f32>)>>("rasters")?;
            let geo = rasters[0].1.geo;
            let mut meta = IdxMeta::new_2d(
                "tutorial-terrain",
                cfg2.width as u64,
                cfg2.height as u64,
                fields,
                cfg2.bits_per_block,
                Codec::Raw,
            )?
            .with_codec_policy(cfg2.codec);
            if let Some(g) = geo {
                meta = meta.with_geo(g);
            }
            let ds = IdxDataset::create(store2.clone(), "tutorial/idx", meta)?
                .with_obs(&obs2)
                .with_write_concurrency(cfg2.write_concurrency);
            let mut artifacts = Vec::new();
            let mut ingest = WriteStats::default();
            for param in TerrainParam::all() {
                let key = format!("tutorial/tiff/{}.tif", param.name());
                let tiff_bytes = store2.get(&key)?;
                let wall = Instant::now();
                let raster = read_tiff::<f32>(&tiff_bytes)?;
                let stats = ds.write_raster(param.name(), 0, &raster)?;
                ctx.clock().advance_secs(wall.elapsed().as_secs_f64());
                artifacts.push(Artifact::of_size(
                    format!("{}.idx-blocks", param.name()),
                    stats.bytes_stored,
                    format!("tutorial/idx/f{}", param.name()),
                ));
                ingest.merge(&stats);
            }
            ctx.put("idx_bytes", ingest.bytes_stored);
            ctx.put("ingest", ingest);
            Ok(artifacts)
        },
    )?;

    // ---- Step 3: static visualization & validation -------------------------
    let store3 = store.clone();
    let obs3 = obs.clone();
    wf.add_step(
        "3-static-visualization",
        &["2-convert-to-idx"],
        &["elevation.idx-blocks", "slope.idx-blocks", "aspect.idx-blocks", "hillshade.idx-blocks"],
        move |ctx| {
            let _step_span = obs3.span("3-static-visualization");
            let ds = IdxDataset::open(store3.clone(), "tutorial/idx")?.with_obs(&obs3);
            let rasters = ctx.get::<Vec<(TerrainParam, Raster<f32>)>>("rasters")?;
            let mut accuracy = Vec::new();
            let mut artifacts = Vec::new();
            for (param, original) in rasters {
                let (from_idx, _) = ds.read_full::<f32>(param.name(), 0)?;
                let wall = Instant::now();
                let report = AccuracyReport::compare(original, &from_idx)?;
                let img = nsdf_dashboard::render(&from_idx, Colormap::Terrain, RangeMode::Dynamic)?;
                ctx.clock().advance_secs(wall.elapsed().as_secs_f64());
                let ppm = img.to_ppm();
                artifacts.push(Artifact::of_bytes(
                    format!("{}.ppm", param.name()),
                    &ppm,
                    format!("tutorial/static/{}.ppm", param.name()),
                ));
                accuracy.push((*param, report));
            }
            ctx.put("accuracy", accuracy);
            Ok(artifacts)
        },
    )?;

    // ---- Step 4: interactive visualization & analysis ----------------------
    let store4 = store.clone();
    let cfg4 = cfg.clone();
    let clock4 = clock.clone();
    let obs4 = obs.clone();
    wf.add_step(
        "4-interactive-dashboard",
        &["3-static-visualization"],
        &["elevation.idx-blocks"],
        move |ctx| {
            let _step_span = obs4.span("4-interactive-dashboard");
            let ds = Arc::new(IdxDataset::open(store4.clone(), "tutorial/idx")?.with_obs(&obs4));
            let mut dash = Dashboard::new();
            dash.set_obs(&obs4);
            dash.add_dataset("tutorial-terrain", ds.clone());
            dash.select_dataset("tutorial-terrain")?;
            dash.set_viewport_px(cfg4.viewport_px)?;
            dash.set_colormap(Colormap::Terrain);

            let mut interactions = Vec::new();
            let mut record = |label: &str, frame: Option<FrameInfo>, t0: f64| {
                interactions.push(Interaction {
                    label: label.to_string(),
                    virtual_secs: clock4.now_secs() - t0,
                    frame,
                });
            };

            let t = clock4.now_secs();
            let (_, info) = dash.render_frame()?;
            record("overview", Some(info), t);

            let t = clock4.now_secs();
            dash.zoom(4.0)?;
            let (_, info) = dash.render_frame()?;
            record("zoom-4x", Some(info), t);

            let t = clock4.now_secs();
            dash.pan((cfg4.width / 8) as i64, 0)?;
            let (_, info) = dash.render_frame()?;
            record("pan", Some(info), t);

            let t = clock4.now_secs();
            dash.select_field("slope")?;
            let (_, info) = dash.render_frame()?;
            record("switch-field", Some(info), t);

            let t = clock4.now_secs();
            let region = dash.region();
            let quarter = Box2i::new(
                region.x0,
                region.y0,
                region.x0 + (region.width() / 2).max(1),
                region.y0 + (region.height() / 2).max(1),
            );
            let snip = dash.snip(quarter)?;
            record("snip", None, t);

            let artifacts = vec![
                Artifact::of_bytes(
                    "snippet.py",
                    snip.python_script.as_bytes(),
                    "tutorial/snippets/extract.py",
                ),
                Artifact::of_size(
                    "snippet.npy",
                    (snip.raster.len() * 4) as u64,
                    "tutorial/snippets/region.npy",
                ),
            ];
            ctx.put("interactions", interactions);
            Ok(artifacts)
        },
    )?;

    let mut ctx = RunContext::new(clock.clone());
    let run_span = obs.span("run");
    let provenance = wf.run(&mut ctx);
    drop(run_span);
    if !provenance.succeeded() {
        let failed = provenance
            .steps
            .iter()
            .find_map(|s| s.error.clone())
            .unwrap_or_else(|| "unknown step failure".into());
        return Err(NsdfError::invalid(format!("tutorial workflow failed: {failed}")));
    }

    let tiff_bytes = provenance.steps[0].produced.iter().map(|a| a.bytes).sum();
    let idx_bytes: u64 = ctx.take("idx_bytes")?;
    let ingest: WriteStats = ctx.take("ingest")?;
    let accuracy: Vec<(TerrainParam, AccuracyReport)> = ctx.take("accuracy")?;
    let interactions: Vec<Interaction> = ctx.take("interactions")?;
    Ok(TutorialReport {
        provenance,
        tiff_bytes,
        idx_bytes,
        ingest,
        accuracy,
        interactions,
        total_virtual_secs: clock.now_secs() - t_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small(endpoint: &str) -> TutorialReport {
        let client = NsdfClient::simulated(5);
        let mut cfg = TutorialConfig::small(5);
        cfg.width = 128;
        cfg.height = 64;
        cfg.tiles = (2, 2);
        cfg.storage_endpoint = endpoint.into();
        run_tutorial(&client, &cfg).unwrap()
    }

    #[test]
    fn four_steps_all_succeed() {
        let report = run_small("seal");
        assert_eq!(report.provenance.steps.len(), 4);
        assert!(report.provenance.succeeded());
        let names: Vec<&str> = report.provenance.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "1-data-generation",
                "2-convert-to-idx",
                "3-static-visualization",
                "4-interactive-dashboard"
            ]
        );
    }

    #[test]
    fn idx_is_smaller_than_tiff_and_lossless() {
        let report = run_small("seal");
        assert!(report.tiff_bytes > 0 && report.idx_bytes > 0);
        assert!(
            report.size_ratio() < 1.0,
            "IDX {} vs TIFF {}",
            report.idx_bytes,
            report.tiff_bytes
        );
        assert!(report.validation_exact(), "lossless codec must validate exactly");
        assert_eq!(report.accuracy.len(), 4);
        // Step 2's merged ingest accounting agrees with the byte totals and
        // records the batched upload pipeline.
        assert_eq!(report.ingest.bytes_stored, report.idx_bytes);
        assert!(report.ingest.blocks_written > 0);
        assert_eq!(report.ingest.write_concurrency, 8);
        assert!(report.ingest.put_batches > 0);
        assert_eq!(report.ingest.rmw_fetches, 0, "full-raster conversion never RMWs");
    }

    #[test]
    fn dashboard_interactions_recorded_with_time() {
        let report = run_small("dataverse");
        let labels: Vec<&str> = report.interactions.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, vec!["overview", "zoom-4x", "pan", "switch-field", "snip"]);
        // Step 2's write-through cache keeps step-4 reads warm (that is the
        // caching behaviour §III-A advertises), so interactions are nearly
        // free; the uploads earlier in the run must still have cost time.
        assert!(report.interactions.iter().all(|i| i.virtual_secs >= 0.0));
        assert!(report.total_virtual_secs > 0.0);
        assert!(report.interactions[0].frame.as_ref().unwrap().stats.blocks_touched > 0);
    }

    #[test]
    fn local_endpoint_has_zero_storage_time_for_interactions() {
        let report = run_small("local");
        // All data local: interactions only cost (tiny) recorded wall time
        // for reads, which the memory store does not charge.
        assert!(report.interactions.iter().all(|i| i.virtual_secs < 0.5));
        assert!(report.validation_exact());
    }

    #[test]
    fn provenance_lineage_links_steps() {
        let report = run_small("seal");
        let p = &report.provenance;
        assert_eq!(p.producer_of("elevation.tif").unwrap().name, "1-data-generation");
        let consumers = p.consumers_of("elevation.idx-blocks");
        assert_eq!(consumers.len(), 2); // steps 3 and 4
    }

    #[test]
    fn tutorial_spans_attribute_steps_and_layers() {
        let client = NsdfClient::simulated(12);
        let mut cfg = TutorialConfig::small(12);
        cfg.width = 128;
        cfg.height = 64;
        cfg.tiles = (2, 2);
        run_tutorial(&client, &cfg).unwrap();

        let roots = client.obs().span_tree();
        assert_eq!(roots.len(), 1, "one root span for the whole run");
        assert_eq!(roots[0].label, "tutorial.run");
        let steps: Vec<&str> = roots[0].children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            steps,
            vec![
                "tutorial.1-data-generation",
                "tutorial.2-convert-to-idx",
                "tutorial.3-static-visualization",
                "tutorial.4-interactive-dashboard"
            ]
        );
        // Layers below the steps landed in the same registry.
        let snap = client.obs().snapshot();
        assert!(snap.counter("tutorial.geotiled.tiles") > 0);
        assert!(snap.counter("tutorial.idx.queries") > 0);
        assert!(snap.counter("tutorial.dashboard.frames") > 0);
        assert!(snap.counter("seal.wan.bytes_up") > 0, "tutorial stored on seal");
    }

    #[test]
    fn lossy_codec_reports_inexact_validation() {
        let client = NsdfClient::simulated(6);
        let mut cfg = TutorialConfig::small(6);
        cfg.width = 64;
        cfg.height = 64;
        cfg.tiles = (2, 2);
        cfg.codec = CodecPolicy::Static(Codec::FixedRate { bits: 12 });
        cfg.storage_endpoint = "local".into();
        let report = run_tutorial(&client, &cfg).unwrap();
        assert!(!report.validation_exact());
        // But still close: PSNR above 40 dB for 12-bit terrain.
        for (p, acc) in &report.accuracy {
            assert!(acc.psnr_db > 40.0, "{}: {} dB", p.name(), acc.psnr_db);
        }
        assert!(report.size_ratio() < 0.5);
    }
}
