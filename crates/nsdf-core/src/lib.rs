//! # nsdf-core
//!
//! The top of the NSDF stack: a client session over named storage
//! endpoints ([`client`]), the paper's four-step tutorial workflow as an
//! instrumented pipeline ([`pipeline`]), the tutorial-delivery / survey
//! simulation behind Table I and Fig. 8 ([`tutorial`]), and the
//! multi-tenant fleet simulator with QoS scheduling ([`fleet`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod pipeline;
pub mod tutorial;

pub use client::{EndpointKind, EndpointPolicy, FleetClient, NsdfClient, StorageEndpoint};
pub use fleet::{run_fleet, FleetConfig, FleetReport, LatencySummary};
pub use pipeline::{run_tutorial, Interaction, TutorialConfig, TutorialReport};
pub use tutorial::{
    format_table1, Background, Modality, QuestionTally, Session, SurveyModel, SurveyQuestion,
};
