//! # nsdf-core
//!
//! The top of the NSDF stack: a client session over named storage
//! endpoints ([`client`]), the paper's four-step tutorial workflow as an
//! instrumented pipeline ([`pipeline`]), and the tutorial-delivery /
//! survey simulation behind Table I and Fig. 8 ([`tutorial`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod pipeline;
pub mod tutorial;

pub use client::{EndpointKind, EndpointPolicy, NsdfClient, StorageEndpoint};
pub use pipeline::{run_tutorial, Interaction, TutorialConfig, TutorialReport};
pub use tutorial::{
    format_table1, Background, Modality, QuestionTally, Session, SurveyModel, SurveyQuestion,
};
