//! Offline shim for the `rand` crate.
//!
//! Implements the API subset the workspace uses — `StdRng::seed_from_u64`
//! plus `Rng::gen_range` over integer and float ranges — on a SplitMix64
//! generator. The stream differs from upstream `StdRng` (ChaCha12), which
//! only changes the *content* of procedurally generated test terrain, not
//! any correctness property; determinism per seed is preserved.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic generator (SplitMix64 under this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types a range can be sampled into.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// Types `Rng::gen` can produce.
pub trait Fill {
    /// Draw one uniform value.
    fn fill_from(rng: &mut impl RngCore) -> Self;
}

impl Fill for bool {
    fn fill_from(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_fill {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill_from(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_fill!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<f64> = (0..16).map(|_| a.gen_range(-1.0..1.0)).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.gen_range(-1.0..1.0)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<f64> = (0..16).map(|_| c.gen_range(-1.0..1.0)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = r.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let f = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
