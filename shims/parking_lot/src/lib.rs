//! Offline shim for the `parking_lot` crate.
//!
//! Provides the parking_lot API subset this workspace uses — `Mutex`,
//! `RwLock`, and `Condvar` with non-poisoning guards — as thin wrappers
//! over `std::sync`. Poison errors are unwrapped into the inner guard,
//! matching parking_lot's "poisoning does not exist" semantics.

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex (parking_lot-compatible API over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Condition variable compatible with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    ///
    /// parking_lot mutates the guard in place; the std backend swaps it
    /// through a move, so the shim takes and returns ownership internally.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut g = lock.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
