//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the proptest API subset its tests actually use: `proptest!` with an
//! optional `proptest_config` attribute, strategies over integer and float
//! ranges, `any::<T>()`, `Just`, tuples, `prop_map`, `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//! - no shrinking: a failing case reports its inputs and panics as-is;
//! - generation is fully deterministic, seeded from the test's module path
//!   and name, so failures reproduce without a persistence file;
//! - rejected cases (`prop_assume!`) are re-drawn, with a global cap.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike upstream there is no value tree: `generate` draws a single
    /// concrete value from the deterministic [`TestRng`].
    pub trait Strategy {
        /// Type of values this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, func: f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (`prop_oneof!` arms, heterogeneous unions).
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.func)(self.source.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Full-domain strategy for primitive types; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Strategy over `T`'s whole value domain (primitives only).
    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryPrim> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Primitives `any::<T>()` can produce.
    pub trait ArbitraryPrim {
        /// Draw a uniform value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryPrim for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64_inclusive() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]; convertible from ranges and fixed sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: u64,
        hi_inclusive: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n as u64, hi_inclusive: n as u64 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start as u64, hi_inclusive: r.end as u64 - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start() as u64, hi_inclusive: *r.end() as u64 }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test's full name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test stream.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform float in `[0, 1]`.
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }

    /// Outcome of one generated case when it does not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property does not hold for these inputs.
        Fail(String),
        /// Precondition failure (`prop_assume!`): redraw and retry.
        Reject(String),
    }

    /// Subset of proptest's runner configuration: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trades coverage for
            // wall-clock since every case re-runs full pipelines.
            ProptestConfig { cases: 32 }
        }
    }
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __inputs = ($(::std::clone::Clone::clone(&$arg),)+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < 100_000,
                            "prop_assume! rejected too many cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "property {} failed at case {}: {}\ninputs {}: {:?}",
                            stringify!($name),
                            passed,
                            msg,
                            stringify!(($($arg),+)),
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert a property inside `proptest!`; on failure the case's inputs are
/// reported. Accepts an optional format message like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` analogue for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
}

/// Skip the current case unless `cond` holds; a fresh case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    fn pick() -> impl Strategy<Value = Pick> {
        prop_oneof![(0u8..10).prop_map(Pick::A), Just(Pick::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..=5, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vecs_respect_size(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
        }

        #[test]
        fn oneof_hits_all_arms(vs in collection::vec(pick(), 64..65)) {
            prop_assert!(vs.iter().any(|p| matches!(p, Pick::A(_))));
            prop_assert!(vs.contains(&Pick::B));
        }

        #[test]
        fn assume_redraws(x in 0u8..4) {
            prop_assume!(x != 1);
            prop_assert!(x != 1);
        }

        #[test]
        fn tuples_compose(pair in (1u8..3, any::<bool>()), eq_msg in 0u32..1) {
            prop_assert!(pair.0 >= 1 && pair.0 < 3);
            prop_assert_eq!(eq_msg, 0, "custom {}", "message");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = crate::collection::vec(crate::strategy::any::<u64>(), 3..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
