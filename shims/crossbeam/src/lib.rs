//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* — `crossbeam::scope` with
//! scoped spawns and joinable handles — implemented directly on
//! `std::thread::scope` (stable since 1.63). Semantics match crossbeam for
//! every call site in this repository; the one observable difference is
//! that a panicking child thread panics out of `scope` itself (std
//! behaviour) instead of surfacing as `Err`, which is equivalent for
//! callers that `.expect()`/`.unwrap()` the result, as all call sites here
//! do.

/// Result of a scope or a join: `Ok` unless a child panicked.
pub type ScopeResult<T> = std::thread::Result<T>;

/// A scope handle mirroring `crossbeam::thread::Scope`.
///
/// Wraps a `std::thread::Scope`; `Copy` so it can be handed to spawned
/// closures (crossbeam passes the scope back into every spawned closure to
/// allow nested spawns).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// A joinable handle mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` if it panicked.
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to `'scope`. The closure receives the scope
    /// itself (for nested spawns), exactly like crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&me)) }
    }
}

/// Create a scope for spawning borrowing threads; all threads are joined
/// before `scope` returns. Mirrors `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Re-export under the `thread` module path as crossbeam does.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let hits = AtomicUsize::new(0);
        let sums: Vec<u64> = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let (data, hits) = (&data, &hits);
                    s.spawn(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        data[i] * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![10, 20, 30, 40]);
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_passed_scope() {
        let v = super::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
