//! Offline shim for the `criterion` crate.
//!
//! Implements the criterion API surface the `bench` crate uses — groups,
//! `bench_function` / `bench_with_input`, throughput annotation,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros — as
//! a small wall-clock harness. No statistical analysis, plots, or HTML
//! reports: each benchmark runs a bounded number of iterations inside the
//! configured measurement window and prints the mean iteration time (plus
//! derived throughput when annotated). Good enough to compare orders of
//! magnitude and produce the numbers quoted in EXPERIMENTS.md.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work. Thin wrapper over `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation for a benchmark group; scales the printed rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{param}", name.into()) }
    }

    /// Parameter-only id for groups benching one function over inputs.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a RunConfig,
    /// Mean seconds per iteration of the most recent `iter` call.
    result: Option<MeasuredTime>,
}

#[derive(Clone, Copy)]
struct MeasuredTime {
    mean_secs: f64,
    iters: u64,
}

impl<'a> Bencher<'a> {
    /// Run `f` repeatedly and record the mean wall-clock time. Iteration
    /// count is bounded by both the sample budget and the measurement
    /// window so slow benchmarks stay responsive.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let budget = self.config.measurement_time;
        let max_iters = self.config.sample_size.max(1) as u64;
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < max_iters {
            black_box(f());
            iters += 1;
            if started.elapsed() >= budget {
                break;
            }
        }
        let mean_secs = started.elapsed().as_secs_f64() / iters as f64;
        self.result = Some(MeasuredTime { mean_secs, iters });
    }
}

#[derive(Clone, Debug)]
struct RunConfig {
    sample_size: usize,
    #[allow(dead_code)]
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Benchmark harness entry point, configured like upstream criterion.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    config: RunConfig,
}

impl Criterion {
    /// Upper bound on iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Warm-up budget (the shim always runs exactly one untimed warm-up
    /// iteration; the duration is accepted for API compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Upstream parses CLI filters here; the shim runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            config_throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, None, &id.into().id, None, f);
        self
    }
}

/// Group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: RunConfig,
    config_throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate per-iteration work so a rate is printed alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.config_throughput = Some(t);
        self
    }

    /// Override the iteration bound for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, Some(&self.name), &id.into().id, self.config_throughput, f);
        self
    }

    /// Benchmark a closure over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.config, Some(&self.name), &id.into().id, self.config_throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (upstream flushes reports here; the shim prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &RunConfig,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { config, result: None };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match b.result {
        Some(m) => {
            let rate = match throughput {
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>10.1} MiB/s", n as f64 / m.mean_secs / (1u64 << 20) as f64)
                }
                Some(Throughput::Elements(n)) => {
                    format!("  {:>10.0} elem/s", n as f64 / m.mean_secs)
                }
                None => String::new(),
            };
            println!(
                "bench: {label:<56} {:>12}  ({} iters){rate}",
                format_time(m.mean_secs),
                m.iters
            );
        }
        None => println!("bench: {label:<56} (no measurement)"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_bounds_iters() {
        let config = RunConfig {
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(50),
        };
        let mut b = Bencher { config: &config, result: None };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        let m = b.result.expect("measured");
        assert!(m.iters >= 1 && m.iters <= 5);
        assert_eq!(calls, m.iters + 1); // +1 warm-up
        assert!(m.mean_secs >= 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .configure_from_args();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7 * 6)));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("lz4").id, "lz4");
    }
}
