//! GEOtiled terrain pipeline at scale (paper §IV-A, Fig. 5).
//!
//! Sweeps DEM sizes and tile grids, computing all four terrain parameters
//! tiled and in parallel, and reports: wall time, speedup over sequential
//! single-tile execution, halo overhead, and the tiled-vs-untiled accuracy
//! (bit-exact with a safe halo; non-zero error with halo 0, which is the
//! ablation that motivates halos).
//!
//! Run with: `cargo run --release --example terrain_pipeline`

use nsdf::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    println!("== GEOtiled terrain pipeline ==\n");

    // Part 1: scaling sweep.
    println!(
        "{:<12} {:<10} {:>10} {:>10} {:>9} {:>12}",
        "grid", "tiles", "seq_ms", "par_ms", "speedup", "halo_ovh%"
    );
    for &size in &[256usize, 512, 1024] {
        let dem = DemConfig::conus_like(size, size, 99).generate();
        let seq_plan = TilePlan::new(1, 1, 1)?;
        let t0 = Instant::now();
        let (reference, _) =
            compute_terrain_tiled(&dem, TerrainParam::Slope, Sun::default(), &seq_plan, 1)?;
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

        for &tiles in &[2usize, 4, 8] {
            let plan = TilePlan::new(tiles, tiles, 1)?;
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
            let t1 = Instant::now();
            let (tiled, stats) =
                compute_terrain_tiled(&dem, TerrainParam::Slope, Sun::default(), &plan, threads)?;
            let par_ms = t1.elapsed().as_secs_f64() * 1e3;
            let acc = AccuracyReport::compare(&reference, &tiled)?;
            assert!(acc.is_exact(), "tiled result must equal untiled");
            println!(
                "{:<12} {:<10} {:>10.1} {:>10.1} {:>8.2}x {:>11.1}%",
                format!("{size}x{size}"),
                format!("{tiles}x{tiles}"),
                seq_ms,
                par_ms,
                seq_ms / par_ms,
                stats.halo_overhead() * 100.0
            );
        }
    }

    // Part 2: the halo ablation — why GEOtiled buffers tiles.
    println!("\n-- halo ablation (512x512, 8x8 tiles, slope) --");
    let dem = DemConfig::conus_like(512, 512, 7).generate();
    let (reference, _) = compute_terrain_tiled(
        &dem,
        TerrainParam::Slope,
        Sun::default(),
        &TilePlan::new(1, 1, 0)?,
        1,
    )?;
    for halo in [0usize, 1, 2, 4] {
        let plan = TilePlan::new(8, 8, halo)?;
        let (tiled, _) =
            compute_terrain_tiled(&dem, TerrainParam::Slope, Sun::default(), &plan, 8)?;
        let acc = AccuracyReport::compare(&reference, &tiled)?;
        println!(
            "  halo {}: max_err={:<12.6} rmse={:<12.6} exact={}",
            halo,
            acc.max_abs_err,
            acc.rmse,
            acc.is_exact()
        );
    }

    // Part 3: all four parameters written out as GeoTIFFs.
    println!("\n-- writing the four terrain parameters as TIFFs --");
    let out_dir = std::env::temp_dir().join("nsdf-terrain-example");
    std::fs::create_dir_all(&out_dir)?;
    let plan = TilePlan::new(4, 4, 1)?;
    for param in TerrainParam::all() {
        let (raster, _) = compute_terrain_tiled(&dem, param, Sun::default(), &plan, 8)?;
        let tiff = write_tiff(&raster, TiffCompression::PackBits)?;
        let path = out_dir.join(format!("{}.tif", param.name()));
        std::fs::write(&path, &tiff)?;
        println!("  {:<10} -> {} ({} bytes)", param.name(), path.display(), tiff.len());
    }
    println!("\nok");
    Ok(())
}
