//! SOMOSPIE-style soil-moisture downscaling (paper §I, ref [8]) on top of
//! the full NSDF stack: GEOtiled terrain → synthetic coarse satellite
//! retrievals → KNN downscaling → publication as an IDX dataset a
//! dashboard can stream.
//!
//! Run with: `cargo run --release --example soil_moisture`

use nsdf::prelude::*;
use nsdf::somospie::{downscale_knn, select_k, SyntheticTruth};
use std::sync::Arc;

fn main() -> Result<()> {
    println!("== SOMOSPIE soil-moisture downscaling ==\n");

    // Terrain predictors from GEOtiled.
    let dem = DemConfig::conus_like(192, 192, 77).generate();
    println!("DEM: 192x192 @ 30 m (synthetic, seed 77)");

    // Synthetic truth + ESA-CCI-like coarse observation (factor 16).
    let truth = SyntheticTruth::from_dem(&dem, 16, 77)?;
    println!(
        "coarse satellite grid: {}x{} (factor {})",
        truth.coarse_obs.width(),
        truth.coarse_obs.height(),
        truth.factor
    );

    // Model selection the way a real deployment must do it: cross-validate
    // on the coarse observations (fine truth is unknown in production).
    let f = truth.factor as usize;
    let train: Vec<(Vec<f64>, f64)> = (0..truth.coarse_obs.height())
        .flat_map(|cy| (0..truth.coarse_obs.width()).map(move |cx| (cx, cy)))
        .map(|(cx, cy)| {
            let (x, y) = (cx * f + f / 2, cy * f + f / 2);
            let a = truth.aspect.get(x, y) as f64;
            let northness = if a < 0.0 { 0.0 } else { a.to_radians().cos() };
            (
                vec![
                    x as f64,
                    y as f64,
                    truth.elevation.get(x, y) as f64,
                    truth.slope.get(x, y) as f64,
                    northness,
                ],
                truth.coarse_obs.get(cx, cy) as f64,
            )
        })
        .collect();
    let cv = select_k(&train, &[1, 3, 5, 9, 15], 5)?;
    println!("\ncross-validation on coarse cells (5-fold):");
    println!("{:<6} {:>14} {:>14} {:>16}", "k", "cv rmse", "true rmse", "bilinear rmse");
    for &(k, cv_rmse) in &cv.scores {
        let report = downscale_knn(&truth, k)?;
        println!("{:<6} {:>14.5} {:>14.5} {:>16.5}", k, cv_rmse, report.rmse, report.baseline_rmse);
    }
    println!("CV picks k = {} (held-out rmse {:.5})", cv.best_k, cv.best_rmse);

    // Publish prediction + truth as a 2-field IDX dataset and render both.
    let report = downscale_knn(&truth, cv.best_k)?;
    let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let meta = IdxMeta::new_2d(
        "soil-moisture",
        192,
        192,
        vec![Field::new("predicted", DType::F32)?, Field::new("truth", DType::F32)?],
        10,
        Codec::LzssHuff { sample_size: 4 },
    )?;
    let ds = IdxDataset::create(store, "somospie/moisture", meta)?;
    ds.write_raster("predicted", 0, &report.predicted)?;
    ds.write_raster("truth", 0, &truth.fine_truth)?;

    let out_dir = std::env::temp_dir().join("nsdf-somospie");
    std::fs::create_dir_all(&out_dir)?;
    let (pred, _) = ds.read_full::<f32>("predicted", 0)?;
    let img = nsdf::dashboard::render(&pred, Colormap::Viridis, RangeMode::Percentile(2.0, 98.0))?;
    std::fs::write(out_dir.join("predicted.ppm"), img.to_ppm())?;
    let diff = nsdf::dashboard::render_difference(&truth.fine_truth, &pred, Colormap::CoolWarm)?;
    std::fs::write(out_dir.join("error.ppm"), diff.to_ppm())?;
    println!("\nrendered predicted.ppm and error.ppm to {}", out_dir.display());

    let acc = AccuracyReport::compare(&truth.fine_truth, &pred)?;
    println!(
        "prediction vs truth: rmse={:.5} max_err={:.5} psnr={:.1} dB",
        acc.rmse, acc.max_abs_err, acc.psnr_db
    );
    println!("ok");
    Ok(())
}
