//! Advanced applications: volumetric data through the IDX fabric (the
//! tutorial's advanced tier — "handling and visualizing massive datasets
//! requiring high-resolution data management").
//!
//! Builds a synthetic 3-D scalar field (a buried plume in layered strata),
//! publishes it as a 3-D IDX dataset on a simulated private cloud, then
//! explores it the way the dashboard does: progressive z-slices, a sub-box
//! extraction, and cold/warm cache economics.
//!
//! Run with: `cargo run --release --example volume_exploration`

use nsdf::idx::IdxVolume;
use nsdf::prelude::*;
use nsdf::util::Volume;
use std::sync::Arc;

fn synthetic_plume(n: usize) -> Volume<f32> {
    Volume::from_fn(n, n, n, |x, y, z| {
        // Layered background + an ellipsoidal anomaly.
        let layers = (z as f32 * 0.3).sin() * 10.0 + z as f32;
        let (cx, cy, cz) = (n as f32 / 2.0, n as f32 / 2.0, n as f32 / 3.0);
        let d2 = ((x as f32 - cx) / 10.0).powi(2)
            + ((y as f32 - cy) / 6.0).powi(2)
            + ((z as f32 - cz) / 14.0).powi(2);
        layers + 80.0 * (-d2).exp()
    })
}

fn main() -> Result<()> {
    let n = 64usize;
    println!("== volumetric exploration ({n}^3 scalar field) ==\n");
    let truth = synthetic_plume(n);

    let clock = SimClock::new();
    let wan = Arc::new(CloudStore::new(
        Arc::new(MemoryStore::new()),
        NetworkProfile::private_seal(),
        clock.clone(),
        9,
    ));
    let cached = Arc::new(CachedStore::new(wan, 64 << 20));

    let meta = nsdf::idx::IdxMeta::new_3d(
        "plume",
        n as u64,
        n as u64,
        n as u64,
        vec![nsdf::idx::Field::new("density", DType::F32)?],
        10,
        Codec::LzssHuff { sample_size: 4 },
    )?;
    let ds = IdxVolume::create(cached.clone() as Arc<dyn ObjectStore>, "volumes/plume", meta)?;
    let t0 = clock.now_secs();
    let stats = ds.write_volume("density", 0, &truth)?;
    println!(
        "published: {} blocks, {} -> {} bytes ({:.0}% of raw), upload {:.2}s virtual",
        stats.blocks_written,
        stats.bytes_raw,
        stats.bytes_stored,
        stats.compression_fraction() * 100.0,
        clock.now_secs() - t0
    );

    // Progressive z-slice through the plume centre, coarse to fine.
    cached.clear();
    let out_dir = std::env::temp_dir().join("nsdf-volume");
    std::fs::create_dir_all(&out_dir)?;
    let z = (n / 3) as i64;
    println!("\nprogressive slice at z={z}:");
    println!("{:<8} {:>10} {:>8} {:>12} {:>10}", "level", "samples", "blocks", "bytes", "virt_ms");
    let max = ds.max_level();
    for level in [max - 9, max - 6, max - 3, max] {
        let t = clock.now_secs();
        let (slice, q) = ds.read_slice_z::<f32>("density", 0, z, level)?;
        println!(
            "{:<8} {:>10} {:>8} {:>12} {:>10.1}",
            level,
            q.samples_out,
            q.blocks_touched,
            q.bytes_fetched,
            (clock.now_secs() - t) * 1e3
        );
        let img =
            nsdf::dashboard::render(&slice, Colormap::Viridis, RangeMode::Percentile(1.0, 99.0))?;
        std::fs::write(out_dir.join(format!("slice-z{z}-l{level}.ppm")), img.to_ppm())?;
    }

    // Interactive exploration through the VolumeExplorer (the dashboard's
    // z-slider over volumes): a 4-frame flythrough.
    let mut explorer = nsdf::dashboard::VolumeExplorer::new(Arc::new(IdxVolume::open(
        cached.clone() as Arc<dyn ObjectStore>,
        "volumes/plume",
    )?));
    explorer.set_colormap(Colormap::CoolWarm);
    explorer.set_level(max - 3);
    for (z, img) in explorer.flythrough(4)? {
        std::fs::write(out_dir.join(format!("fly-z{z}.ppm")), img.to_ppm())?;
    }
    println!("\nflythrough: 4 frames at level {} written", explorer.level());

    // Sub-box extraction around the anomaly at full resolution.
    let b = nsdf::util::Box3i::new(
        n as i64 / 2 - 12,
        n as i64 / 2 - 8,
        n as i64 / 3 - 14,
        n as i64 / 2 + 12,
        n as i64 / 2 + 8,
        n as i64 / 3 + 14,
    );
    let t = clock.now_secs();
    let (sub, q) = ds.read_box::<f32>("density", 0, b, max)?;
    println!(
        "\nsub-box {:?}: {:?} samples, {} blocks, {:.1} virt_ms",
        (b.width(), b.height(), b.depth()),
        sub.shape(),
        q.blocks_touched,
        (clock.now_secs() - t) * 1e3
    );
    // Verify against the ground truth.
    let window = truth.window(b)?;
    assert_eq!(sub.data(), window.data(), "IDX sub-box must equal the source window");
    println!("sub-box verified bit-exact against the source volume");

    // Warm repeat.
    let t = clock.now_secs();
    ds.read_box::<f32>("density", 0, b, max)?;
    println!("same sub-box warm: {:.3} virt_ms", (clock.now_secs() - t) * 1e3);
    println!("\nslices written to {}", out_dir.display());
    println!("ok");
    Ok(())
}
