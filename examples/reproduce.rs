//! Regenerate every table and figure of the paper from the Rust stack.
//!
//! Usage: `cargo run --release --example reproduce -- [target]`
//! where `target` is one of `table1`, `fig3`, `fig4`, `fig5`, `fig6`,
//! `fig7`, `fig8`, `hz`, `compress`, `fuse`, `catalog`, `plugin`, `cloud`,
//! or
//! `all` (default). Output is deterministic for a fixed seed.

use nsdf::catalog::{Catalog, Record};
use nsdf::compress::CompressionStats;
use nsdf::fuse::{run_workload, Mapping, OpMix};
use nsdf::idx::{blocks_touched, Layout};
use nsdf::plugin::{run_campaign, select_entry_point, select_entry_point_oracle};
use nsdf::prelude::*;
use nsdf::util::samples_to_bytes;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 2024;

fn main() -> Result<()> {
    let target = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = target == "all";
    let mut ran = false;
    macro_rules! section {
        ($name:literal, $f:expr) => {
            if all || target == $name {
                println!("\n================ {} ================", $name);
                $f?;
                ran = true;
            }
        };
    }
    section!("table1", table1());
    section!("fig8", fig8());
    section!("fig3", fig3());
    section!("fig4", fig4());
    section!("fig5", fig5());
    section!("fig6", fig6());
    section!("fig7", fig7());
    section!("hz", hz_locality());
    section!("compress", compress_table());
    section!("fuse", fuse_table());
    section!("catalog", catalog_table());
    section!("plugin", plugin_table());
    section!("cloud", cloud_table());
    if !ran {
        eprintln!("unknown target {target:?}");
        std::process::exit(2);
    }
    Ok(())
}

/// Table I: participants per session.
fn table1() -> Result<()> {
    print!("{}", format_table1(&Session::paper_sessions()));
    Ok(())
}

/// Fig. 8: survey Likert histograms (simulated cohorts; see DESIGN.md).
fn fig8() -> Result<()> {
    let tallies = SurveyModel::new(SEED).run(&Session::paper_sessions())?;
    for t in &tallies {
        println!("\n(Fig. {}) {}", t.question.panel(), t.question.text());
        println!(
            "  n={} mean={:.2} positive={:.0}%",
            t.total(),
            t.mean(),
            t.positive_fraction() * 100.0
        );
        print!("{}", t.ascii());
    }
    Ok(())
}

/// Fig. 3: the data-conversion flow across storage environments.
fn fig3() -> Result<()> {
    println!("TIFF->IDX conversion pipeline routed through each environment:");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14}",
        "endpoint", "tiff_bytes", "idx_bytes", "ratio", "virt_secs"
    );
    for endpoint in ["local", "dataverse", "seal"] {
        let client = NsdfClient::simulated(SEED);
        let mut cfg = TutorialConfig::small(SEED);
        cfg.storage_endpoint = endpoint.into();
        let report = run_tutorial(&client, &cfg)?;
        println!(
            "{:<12} {:>12} {:>12} {:>10.3} {:>14.2}",
            endpoint,
            report.tiff_bytes,
            report.idx_bytes,
            report.size_ratio(),
            report.total_virtual_secs
        );
    }
    Ok(())
}

/// Fig. 4: the four-step workflow with per-step timing and artifacts.
fn fig4() -> Result<()> {
    let client = NsdfClient::simulated(SEED);
    let report = run_tutorial(&client, &TutorialConfig::small(SEED))?;
    println!("{:<28} {:>10} {:>10} {:>14}", "step", "secs", "artifacts", "bytes");
    for s in &report.provenance.steps {
        let bytes: u64 = s.produced.iter().map(|a| a.bytes).sum();
        println!("{:<28} {:>10.3} {:>10} {:>14}", s.name, s.secs(), s.produced.len(), bytes);
    }
    println!("validation exact: {}", report.validation_exact());
    for i in &report.interactions {
        println!("  interaction {:<14} {:>8.3}s", i.label, i.virtual_secs);
    }
    Ok(())
}

/// Fig. 5: GEOtiled — tiling preserves accuracy while parallelising.
fn fig5() -> Result<()> {
    println!(
        "{:<10} {:<8} {:<6} {:>9} {:>9} {:>9} {:>12}",
        "grid", "tiles", "halo", "seq_ms", "par_ms", "speedup", "max_err"
    );
    for &size in &[256usize, 512] {
        let dem = DemConfig::conus_like(size, size, SEED).generate();
        let t0 = Instant::now();
        let (reference, _) = compute_terrain_tiled(
            &dem,
            TerrainParam::Slope,
            Sun::default(),
            &TilePlan::new(1, 1, 1)?,
            1,
        )?;
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        for (tiles, halo) in [(4usize, 1usize), (8, 1), (8, 0)] {
            let plan = TilePlan::new(tiles, tiles, halo)?;
            let t1 = Instant::now();
            let (tiled, _) =
                compute_terrain_tiled(&dem, TerrainParam::Slope, Sun::default(), &plan, 8)?;
            let par_ms = t1.elapsed().as_secs_f64() * 1e3;
            let acc = AccuracyReport::compare(&reference, &tiled)?;
            println!(
                "{:<10} {:<8} {:<6} {:>9.1} {:>9.1} {:>8.2}x {:>12.2e}",
                format!("{size}x{size}"),
                format!("{tiles}x{tiles}"),
                halo,
                seq_ms,
                par_ms,
                seq_ms / par_ms,
                acc.max_abs_err
            );
        }
    }
    Ok(())
}

/// Fig. 6 + §IV-B: TIFF-vs-IDX static validation and the ~20 % size claim.
fn fig6() -> Result<()> {
    let dem = DemConfig::conus_like(512, 512, SEED).generate();
    let slope = nsdf::geotiled::compute_terrain(&dem, TerrainParam::Slope, Sun::default())?;
    let tiff = write_tiff(&slope, TiffCompression::None)?;
    println!("slope raster 512x512 f32; uncompressed TIFF = {} bytes", tiff.len());
    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>10}",
        "idx codec", "idx_bytes", "vs_tiff", "max_err", "psnr_dB"
    );
    for codec in [
        Codec::Raw,
        Codec::PackBits,
        Codec::Lz4,
        Codec::Lzss,
        Codec::ShuffleLzss { sample_size: 4 },
        Codec::LzssHuff { sample_size: 4 },
        Codec::FixedRate { bits: 16 },
        Codec::FixedRate { bits: 10 },
    ] {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let meta =
            IdxMeta::new_2d("fig6", 512, 512, vec![Field::new("slope", DType::F32)?], 12, codec)?;
        let ds = IdxDataset::create(store, "fig6", meta)?;
        let stats = ds.write_raster("slope", 0, &slope)?;
        let (back, _) = ds.read_full::<f32>("slope", 0)?;
        let acc = AccuracyReport::compare(&slope, &back)?;
        println!(
            "{:<16} {:>12} {:>9.3} {:>12.4e} {:>10.1}",
            codec.name(),
            stats.bytes_stored,
            stats.bytes_stored as f64 / tiff.len() as f64,
            acc.max_abs_err,
            acc.psnr_db
        );
    }
    Ok(())
}

/// Fig. 7: interactive dashboard latencies over local vs Seal storage.
fn fig7() -> Result<()> {
    let dem = DemConfig::conus_like(1024, 1024, SEED).generate();
    for (label, remote) in [("local", false), ("seal", true)] {
        let clock = SimClock::new();
        let base: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let store: Arc<dyn ObjectStore> = if remote {
            Arc::new(CachedStore::new(
                Arc::new(CloudStore::new(
                    base,
                    NetworkProfile::private_seal(),
                    clock.clone(),
                    SEED,
                )),
                128 << 20,
            ))
        } else {
            base
        };
        let meta = IdxMeta::new_2d(
            "conus-30m",
            1024,
            1024,
            vec![Field::new("elevation", DType::F32)?],
            12,
            Codec::ShuffleLzss { sample_size: 4 },
        )?;
        let ds = Arc::new(IdxDataset::create(store.clone(), "fig7", meta)?);
        ds.write_raster("elevation", 0, &dem)?;
        // Cold dashboard: drop the transfer cache.
        if remote {
            // Rebuild a fresh cache so interactive reads start cold.
            let inner: Arc<dyn ObjectStore> = Arc::new(CloudStore::new(
                Arc::new(MemoryStore::new()),
                NetworkProfile::private_seal(),
                clock.clone(),
                SEED,
            ));
            // Copy published objects into the fresh WAN store.
            for m in store.list("fig7")? {
                inner.put(&m.key, &store.get(&m.key)?)?;
            }
            let cold: Arc<dyn ObjectStore> = Arc::new(CachedStore::new(inner, 128 << 20));
            let ds = Arc::new(IdxDataset::open(cold, "fig7")?);
            run_session(label, ds, &clock)?;
        } else {
            run_session(label, ds, &clock)?;
        }
    }
    Ok(())
}

fn run_session(label: &str, ds: Arc<IdxDataset>, clock: &SimClock) -> Result<()> {
    let mut dash = Dashboard::new();
    dash.add_dataset("conus", ds);
    dash.select_dataset("conus")?;
    dash.set_viewport_px(512)?;
    println!("-- {label} storage --");
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>10}",
        "interaction", "level", "blocks", "bytes", "virt_ms"
    );
    let shot = |name: &str, dash: &Dashboard| -> Result<()> {
        let t = clock.now_secs();
        let (_, info) = dash.render_frame()?;
        println!(
            "{:<18} {:>8} {:>10} {:>12} {:>10.1}",
            name,
            info.level,
            info.stats.blocks_touched,
            info.stats.bytes_fetched,
            (clock.now_secs() - t) * 1e3
        );
        Ok(())
    };
    shot("overview-cold", &dash)?;
    shot("overview-warm", &dash)?;
    dash.zoom(4.0)?;
    shot("zoom-4x", &dash)?;
    dash.pan(128, 128)?;
    shot("pan", &dash)?;
    dash.zoom(4.0)?;
    shot("zoom-16x", &dash)?;
    Ok(())
}

/// §III-A ablation: blocks touched per layout (HZ vs Z vs row-major).
fn hz_locality() -> Result<()> {
    let curve = HzCurve::for_dims_2d(1024, 1024)?;
    let bpb = 12;
    println!("1024x1024 grid, 4096-sample blocks; blocks touched per query:");
    println!("{:<34} {:>8} {:>10} {:>11}", "query", "hz", "z-order", "row-major");
    let max = curve.max_level();
    let cases = [
        ("full grid, overview (1/64 res)", Box2i::new(0, 0, 1024, 1024), max - 6),
        ("full grid, half res", Box2i::new(0, 0, 1024, 1024), max - 2),
        ("128x128 region, full res", Box2i::new(448, 448, 576, 576), max),
        ("64x64 region, full res", Box2i::new(100, 900, 164, 964), max),
    ];
    for (name, region, level) in cases {
        let counts: Vec<u64> = Layout::all()
            .iter()
            .map(|&l| blocks_touched(&curve, l, region, level, bpb))
            .collect::<Result<_>>()?;
        println!("{:<34} {:>8} {:>10} {:>11}", name, counts[0], counts[1], counts[2]);
    }
    Ok(())
}

/// §III-A/IV-B: codec ratio/throughput table on terrain data.
fn compress_table() -> Result<()> {
    let dem = DemConfig::conus_like(512, 512, SEED).generate();
    let raw = samples_to_bytes(dem.data());
    println!("512x512 f32 DEM = {} bytes raw", raw.len());
    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>12}",
        "codec", "bytes", "ratio", "enc_MB/s", "dec_MB/s"
    );
    let mb = raw.len() as f64 / 1e6;
    for codec in [
        Codec::PackBits,
        Codec::Lz4,
        Codec::Lzss,
        Codec::ShuffleLzss { sample_size: 4 },
        Codec::LzssHuff { sample_size: 4 },
        Codec::FixedRate { bits: 16 },
    ] {
        let t0 = Instant::now();
        let enc = codec.encode(&raw)?;
        let enc_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let _ = codec.decode(&enc, raw.len())?;
        let dec_s = t1.elapsed().as_secs_f64();
        let stats = CompressionStats { codec, raw_bytes: raw.len(), compressed_bytes: enc.len() };
        println!(
            "{:<16} {:>10} {:>8.2} {:>12.1} {:>12.1}",
            codec.name(),
            enc.len(),
            stats.ratio(),
            mb / enc_s,
            mb / dec_s
        );
    }
    Ok(())
}

/// §III-B NSDF-FUSE: mapping-package comparison.
fn fuse_table() -> Result<()> {
    println!(
        "{:<14} {:<12} {:>10} {:>10} {:>12}",
        "workload", "mapping", "store_rd", "store_wr", "virt_secs"
    );
    for (name, mix) in
        [("small-files", OpMix::small_files()), ("large-files", OpMix::large_files())]
    {
        for mapping in Mapping::palette() {
            let r = run_workload(mapping, NetworkProfile::public_dataverse(), mix, SEED)?;
            println!(
                "{:<14} {:<12} {:>10} {:>10} {:>12.2}",
                name,
                mapping.name(),
                r.store_read_ops,
                r.store_write_ops,
                r.virtual_secs
            );
        }
    }
    Ok(())
}

/// §III-B NSDF-Catalog: ingest/query throughput + extrapolation.
fn catalog_table() -> Result<()> {
    let cat = Catalog::new(64)?;
    let n = 200_000u64;
    let t0 = Instant::now();
    cat.ingest((0..n).map(|i| {
        Record::new(i, format!("d{:03}/o{i:07}", i % 200), "dataverse", 4096, i % 50_000)
            .expect("valid")
    }));
    let rate = n as f64 / t0.elapsed().as_secs_f64();
    println!("ingest: {rate:.0} records/s (single node)");
    println!("1.59e9 records => {:.1} h single-node ingest", 1.59e9 / rate / 3600.0);
    let t1 = Instant::now();
    let hits = cat.find_by_prefix("d077/");
    println!("prefix query: {} hits in {:.1} ms", hits.len(), t1.elapsed().as_secs_f64() * 1e3);
    Ok(())
}

/// §III / Fig. 2 computing services: NSDF-Cloud ad-hoc clusters.
fn cloud_table() -> Result<()> {
    use nsdf::cloud::{provision, ClusterRequest, Job, Provider};
    let providers = Provider::nsdf_federation();
    println!("bag of 256 jobs x 10 core-minutes over the NSDF federation:");
    println!("{:<8} {:>12} {:>12} {:>10} {:>8}", "nodes", "makespan_s", "cost_$", "util_%", "$/h");
    let jobs: Vec<Job> = (0..256).map(|id| Job { id, work: 600.0 }).collect();
    for nodes in [4u32, 16, 36, 64] {
        let cluster = provision(&providers, &ClusterRequest { nodes, max_cost_per_hour: 50.0 })?;
        let clock = SimClock::new();
        let report = cluster.run_jobs(&jobs, &clock)?;
        println!(
            "{:<8} {:>12.0} {:>12.2} {:>10.1} {:>8.2}",
            nodes,
            report.makespan_secs,
            report.cost_dollars,
            report.utilisation * 100.0,
            cluster.cost_per_hour()
        );
    }
    Ok(())
}

/// §III-B NSDF-Plugin: constraints matrix summary + selection quality.
fn plugin_table() -> Result<()> {
    let tb = nsdf::plugin::Testbed::nsdf_default();
    let matrix = run_campaign(&tb, 50, SEED)?;
    let mut worst: (f64, &str, &str) = (0.0, "", "");
    let mut best: (f64, &str, &str) = (f64::INFINITY, "", "");
    for p in &matrix.pairs {
        if p.from != p.to {
            if p.rtt_mean_ms > worst.0 {
                worst = (p.rtt_mean_ms, &p.from, &p.to);
            }
            if p.rtt_mean_ms < best.0 {
                best = (p.rtt_mean_ms, &p.from, &p.to);
            }
        }
    }
    println!("8-site campaign, 50 probes/pair:");
    println!("  fastest pair: {} -> {} ({:.1} ms)", best.1, best.2, best.0);
    println!("  slowest pair: {} -> {} ({:.1} ms)", worst.1, worst.2, worst.0);
    let replicas = ["utah", "sdsc", "mghpcc", "tacc"];
    let mut agree = 0;
    let clients = ["utk", "umich", "clemson", "jhu"];
    for c in clients {
        let (got, _) = select_entry_point(&matrix, c, &replicas, 1 << 30)?;
        let (want, _) = select_entry_point_oracle(&tb, c, &replicas, 1 << 30)?;
        if got == want {
            agree += 1;
        }
    }
    println!("  entry-point selection matches oracle: {agree}/{} clients", clients.len());
    Ok(())
}
