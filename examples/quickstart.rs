//! Quickstart: the paper's four-step tutorial workflow, end to end, in one
//! binary (paper §IV, Fig. 4).
//!
//! Generates CONUS-like terrain with GEOtiled, uploads TIFFs to a simulated
//! Seal-class private cloud, converts them to an IDX dataset, validates the
//! conversion, and drives the dashboard through a scripted interactive
//! session — printing per-step timings, artifact sizes, and the IDX-vs-TIFF
//! size ratio.
//!
//! Run with: `cargo run --release --example quickstart`

use nsdf::prelude::*;

fn main() -> Result<()> {
    let client = NsdfClient::simulated(2024);
    let cfg = TutorialConfig::small(2024);

    println!("== NSDF tutorial quickstart ==");
    println!(
        "grid {}x{} at 30 m, tiles {:?}, codec {}, storage endpoint {:?}\n",
        cfg.width,
        cfg.height,
        cfg.tiles,
        cfg.codec.name(),
        cfg.storage_endpoint
    );

    let report = run_tutorial(&client, &cfg)?;

    println!("-- per-step timeline (virtual seconds) --");
    for step in &report.provenance.steps {
        println!("  {:<28} {:>8.3}s  ({} artifacts)", step.name, step.secs(), step.produced.len());
        for a in &step.produced {
            println!("      {:<24} {:>12} bytes  -> {}", a.name, a.bytes, a.location);
        }
    }

    println!("\n-- conversion (Step 2, paper claim: IDX ~20% smaller) --");
    println!("  TIFF bytes: {:>12}", report.tiff_bytes);
    println!("  IDX bytes:  {:>12}", report.idx_bytes);
    println!(
        "  size ratio: {:.3}  (space saved: {:.1}%)",
        report.size_ratio(),
        (1.0 - report.size_ratio()) * 100.0
    );

    println!("\n-- validation (Step 3) --");
    for (param, acc) in &report.accuracy {
        println!(
            "  {:<10} rmse={:<12.6} max_err={:<12.6} psnr={:>6.1} dB  exact={}",
            param.name(),
            acc.rmse,
            acc.max_abs_err,
            acc.psnr_db,
            acc.is_exact()
        );
    }
    assert!(report.validation_exact(), "lossless conversion must be exact");

    println!("\n-- interactive session (Step 4) --");
    for i in &report.interactions {
        match &i.frame {
            Some(f) => println!(
                "  {:<14} {:>8.3}s  level {} ({}x{} samples, {} blocks, {} bytes)",
                i.label,
                i.virtual_secs,
                f.level,
                f.raster_width,
                f.raster_height,
                f.stats.blocks_touched,
                f.stats.bytes_fetched
            ),
            None => println!("  {:<14} {:>8.3}s", i.label, i.virtual_secs),
        }
    }

    println!("\nend-to-end virtual time: {:.3}s", report.total_virtual_secs);
    println!("ok");
    Ok(())
}
