//! The supporting NSDF services (paper §III-B): NSDF-Catalog indexing and
//! NSDF-FUSE mapping packages, plus NSDF-Plugin entry-point selection.
//!
//! Run with: `cargo run --release --example catalog_and_fuse`

use nsdf::catalog::{Catalog, Record};
use nsdf::fuse::{run_workload, Mapping, OpMix};
use nsdf::plugin::{run_campaign, select_entry_point, select_entry_point_oracle, Testbed};
use nsdf::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    // ---- NSDF-Catalog: ingest throughput and the 1.59 B extrapolation ----
    println!("== NSDF-Catalog ==");
    let cat = Catalog::new(64)?;
    let n: u64 = 500_000;
    let t0 = Instant::now();
    cat.ingest((0..n).map(|i| {
        Record::new(
            i,
            format!("repo/dataset-{:03}/object-{i:07}", i % 500),
            ["dataverse", "materials-commons", "seal"][(i % 3) as usize],
            1024 + i % 4096,
            nsdf::util::splitmix64(i % 100_000), // ~5x duplicate checksums
        )
        .expect("valid record")
    }));
    let ingest_secs = t0.elapsed().as_secs_f64();
    let rate = n as f64 / ingest_secs;
    println!("ingested {n} records in {ingest_secs:.2}s  ({rate:.0} records/s)");
    println!(
        "at this rate, the production catalog's 1.59e9 records ingest in {:.1} h on one node",
        1.59e9 / rate / 3600.0
    );
    let t1 = Instant::now();
    let hits = cat.find_by_prefix("repo/dataset-042/");
    println!("prefix query: {} hits in {:.1} ms", hits.len(), t1.elapsed().as_secs_f64() * 1e3);
    let stats = cat.stats();
    println!(
        "stats: {} records, {:.1} MB indexed, {} duplicated checksums, sources {:?}",
        stats.records,
        stats.total_bytes as f64 / 1e6,
        stats.duplicate_checksums,
        stats.per_source.keys().collect::<Vec<_>>()
    );

    // ---- NSDF-FUSE: mapping packages over two cloud profiles -------------
    println!("\n== NSDF-FUSE mapping packages ==");
    println!(
        "{:<22} {:<12} {:>9} {:>10} {:>10} {:>10}",
        "workload", "mapping", "file_ops", "store_rd", "store_wr", "virt_secs"
    );
    for (wl_name, mix) in
        [("small-files", OpMix::small_files()), ("large-files", OpMix::large_files())]
    {
        for mapping in Mapping::palette() {
            let r = run_workload(mapping, NetworkProfile::public_dataverse(), mix, 17)?;
            println!(
                "{:<22} {:<12} {:>9} {:>10} {:>10} {:>10.2}",
                wl_name,
                mapping.name(),
                r.file_ops,
                r.store_read_ops,
                r.store_write_ops,
                r.virtual_secs
            );
        }
    }

    // ---- NSDF-Plugin: probe campaign + entry-point selection -------------
    println!("\n== NSDF-Plugin ==");
    let tb = Testbed::nsdf_default();
    let matrix = run_campaign(&tb, 50, 5)?;
    println!("latency matrix (mean RTT ms) across the 8-site testbed:");
    print!("{:>9}", "");
    for name in &matrix.site_names {
        print!("{name:>9}");
    }
    println!();
    for from in &matrix.site_names {
        print!("{from:>9}");
        for to in &matrix.site_names {
            let p = matrix.pair(from, to).expect("full matrix");
            print!("{:>9.1}", p.rtt_mean_ms);
        }
        println!();
    }
    let replicas = ["utah", "sdsc", "mghpcc", "tacc"];
    println!("\nentry-point choice for a 1 GiB download (replicas: {replicas:?}):");
    for client in ["utk", "umich", "clemson", "jhu"] {
        let (site, secs) = select_entry_point(&matrix, client, &replicas, 1 << 30)?;
        let (oracle, _) = select_entry_point_oracle(&tb, client, &replicas, 1 << 30)?;
        println!("  client {client:<8} -> {site:<8} ({secs:.2}s predicted; oracle picks {oracle})");
    }

    println!("\nok");
    Ok(())
}
