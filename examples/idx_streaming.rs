//! Remote IDX streaming economics (paper §III-A, Fig. 7's substrate).
//!
//! Publishes a terrain dataset to simulated public (Dataverse-class) and
//! private (Seal-class) clouds, then measures — in deterministic virtual
//! time — what the IDX layout buys: progressive coarse-to-fine refinement,
//! small-region queries that touch few blocks, and cold-vs-warm cache
//! behaviour.
//!
//! Run with: `cargo run --release --example idx_streaming`

use nsdf::prelude::*;
use std::sync::Arc;

fn publish(store: Arc<dyn ObjectStore>, dem: &Raster<f32>) -> Result<IdxDataset> {
    let (w, h) = dem.shape();
    let meta = IdxMeta::new_2d(
        "stream-demo",
        w as u64,
        h as u64,
        vec![Field::new("elevation", DType::F32)?],
        12,
        Codec::ShuffleLzss { sample_size: 4 },
    )?;
    let ds = IdxDataset::create(store, "published/terrain", meta)?;
    ds.write_raster("elevation", 0, dem)?;
    Ok(ds)
}

fn main() -> Result<()> {
    let dem = DemConfig::conus_like(1024, 1024, 41).generate();
    println!("== IDX streaming over simulated clouds ==");
    println!("dataset: 1024x1024 float32 elevation, shuffle-lzss blocks\n");

    for profile in [NetworkProfile::public_dataverse(), NetworkProfile::private_seal()] {
        let clock = SimClock::new();
        let wan = Arc::new(CloudStore::new(
            Arc::new(MemoryStore::new()),
            profile.clone(),
            clock.clone(),
            7,
        ));
        let cached = Arc::new(CachedStore::new(wan.clone(), 64 << 20));
        let t0 = clock.now_secs();
        let ds = publish(cached.clone(), &dem)?;
        println!(
            "-- {} (rtt {:.0} ms, {:.0} Mbps x{} streams): upload took {:.2}s virtual --",
            profile.name,
            profile.rtt_ms,
            profile.bandwidth_mbps,
            profile.streams,
            clock.now_secs() - t0
        );

        // Progressive refinement of the full view, cold cache.
        cached.clear();
        println!(
            "   {:<8} {:>12} {:>8} {:>12} {:>10}",
            "level", "samples", "blocks", "bytes", "virt_ms"
        );
        let max = ds.max_level();
        for level in [max - 10, max - 8, max - 6, max - 4, max - 2, max] {
            let t = clock.now_secs();
            let (_, stats) = ds.read_box::<f32>("elevation", 0, ds.bounds(), level)?;
            println!(
                "   {:<8} {:>12} {:>8} {:>12} {:>10.1}",
                level,
                stats.samples_out,
                stats.blocks_touched,
                stats.bytes_fetched,
                (clock.now_secs() - t) * 1e3
            );
        }

        // Small-region full-resolution query (the "zoomed in" case).
        let region = Box2i::new(400, 400, 528, 528);
        let t = clock.now_secs();
        let (_, stats) = ds.read_box::<f32>("elevation", 0, region, max)?;
        println!(
            "   region 128x128 @ full res: {} blocks, {} bytes, {:.1} virt_ms",
            stats.blocks_touched,
            stats.bytes_fetched,
            (clock.now_secs() - t) * 1e3
        );

        // Warm-cache re-read: the §III-A caching claim.
        let t = clock.now_secs();
        let (_, _) = ds.read_box::<f32>("elevation", 0, region, max)?;
        let warm_ms = (clock.now_secs() - t) * 1e3;
        let cs = cached.stats();
        println!(
            "   same region warm: {:.3} virt_ms (cache hit rate {:.0}%)\n",
            warm_ms,
            cs.hit_rate() * 100.0
        );
    }

    println!("ok");
    Ok(())
}
