//! A scripted NSDF dashboard session (paper §III-A, Fig. 7).
//!
//! Exercises every control the paper's walkthrough lists — dataset and
//! field dropdowns, time slider with playback, zoom/pan, resolution bias,
//! colormaps, manual ranges, slices, and the snipping tool — and writes
//! each rendered frame as a PPM image so the session is visually
//! inspectable.
//!
//! Run with: `cargo run --release --example dashboard_session`

use nsdf::geotiled::compute_terrain;
use nsdf::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // Build a 4-timestep dataset: terrain plus an evolving "wetness" field.
    let dem = DemConfig::conus_like(512, 512, 3).generate();
    let slope = compute_terrain(&dem, TerrainParam::Slope, Sun::default())?;
    let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
    let meta = IdxMeta::new_2d(
        "tennessee-30m",
        512,
        512,
        vec![Field::new("elevation", DType::F32)?, Field::new("slope", DType::F32)?],
        12,
        Codec::ShuffleLzss { sample_size: 4 },
    )?
    .with_timesteps(4)?;
    let ds = Arc::new(IdxDataset::create(store, "datasets/tennessee", meta)?);
    for t in 0..4 {
        // A seasonal shift so the time slider shows change.
        let season = dem.map(|v: f32| v + (t as f32) * 150.0);
        ds.write_raster("elevation", t, &season)?;
        ds.write_raster("slope", t, &slope)?;
    }

    let out_dir = std::env::temp_dir().join("nsdf-dashboard-frames");
    std::fs::create_dir_all(&out_dir)?;
    let save = |name: &str, img: &Image| -> Result<()> {
        let path = out_dir.join(format!("{name}.ppm"));
        std::fs::write(&path, img.to_ppm())?;
        println!("  saved {}", path.display());
        Ok(())
    };

    let mut dash = Dashboard::new();
    dash.add_dataset("tennessee-30m", ds);
    dash.select_dataset("tennessee-30m")?;
    dash.set_viewport_px(256)?;

    println!("== scripted dashboard session ==");
    println!("datasets: {:?}", dash.list_datasets());
    println!("fields:   {:?}", dash.list_fields()?);

    // Overview with the terrain palette.
    dash.set_colormap(Colormap::Terrain);
    let (img, info) = dash.render_frame()?;
    println!("overview: level {} ({}x{})", info.level, info.raster_width, info.raster_height);
    save("01-overview", &img)?;

    // Progressive refinement, like frames arriving over the network.
    for (i, (img, info)) in dash.render_progressive(4)?.into_iter().enumerate() {
        println!(
            "progressive {}: level {} ({} blocks, {} bytes)",
            i, info.level, info.stats.blocks_touched, info.stats.bytes_fetched
        );
        save(&format!("02-progressive-{i}"), &img)?;
    }

    // Zoom into a quadrant, pan, switch palettes and range mode.
    dash.zoom(4.0)?;
    dash.pan(64, 64)?;
    dash.set_colormap(Colormap::Viridis);
    dash.set_range(RangeMode::Manual(0.0, 4500.0))?;
    let (img, info) = dash.render_frame()?;
    println!("zoomed: level {} region {:?}", info.level, dash.region());
    save("03-zoomed", &img)?;

    // Slices across the zoomed view.
    let h = dash.horizontal_slice(0.5)?;
    let v = dash.vertical_slice(0.5)?;
    println!(
        "slices: horizontal n={} (min {:.0}, max {:.0}); vertical n={}",
        h.len(),
        h.iter().cloned().fold(f64::INFINITY, f64::min),
        h.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        v.len()
    );

    // Time slider + playback at 2 steps/sec.
    dash.set_playing(true);
    dash.set_speed(2.0)?;
    for frame in 0..4 {
        let t = dash.tick(0.5)?;
        let (img, _) = dash.render_frame()?;
        println!("playback frame {frame}: timestep {t}");
        save(&format!("04-playback-{frame}"), &img)?;
    }
    dash.set_playing(false);

    // Field switch + snip: the "download a NumPy array or a Python script"
    // feature.
    dash.select_field("slope")?;
    dash.set_range(RangeMode::Dynamic)?;
    let region = dash.region();
    let snip =
        dash.snip(Box2i::new(region.x0 + 10, region.y0 + 10, region.x0 + 74, region.y0 + 74))?;
    println!(
        "snip: {}x{} samples from {:?}",
        snip.raster.width(),
        snip.raster.height(),
        snip.region
    );
    println!("-- generated extraction script --\n{}", snip.python_script);

    println!("frames written to {}", out_dir.display());
    println!("ok");
    Ok(())
}
