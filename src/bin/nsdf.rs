//! `nsdf` — command-line interface to the nsdf-rs stack.
//!
//! Mirrors the hands-on commands of the tutorial: generate terrain,
//! convert TIFF to IDX, inspect and query datasets, render frames, and run
//! the whole four-step workflow.
//!
//! ```text
//! nsdf gen-dem   --size 512 --seed 7 --out dem.tif
//! nsdf terrain   --dem dem.tif --param slope --out slope.tif
//! nsdf convert   --tiff slope.tif --store ./idxdata --name slope
//! nsdf info      --store ./idxdata --name slope
//! nsdf query     --store ./idxdata --name slope --region 10,10,200,200 \
//!                --level 14 --out crop.tif
//! nsdf render    --store ./idxdata --name slope --out frame.ppm \
//!                --colormap terrain
//! nsdf tutorial  --seed 2024 --endpoint seal
//! ```

use nsdf::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "gen-dem" => gen_dem(&opts),
        "terrain" => terrain(&opts),
        "convert" => convert(&opts),
        "info" => info(&opts),
        "query" => query(&opts),
        "render" => render_cmd(&opts),
        "tutorial" => tutorial(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "nsdf — NSDF training-stack CLI

commands:
  gen-dem   --out FILE [--size N] [--width N --height N] [--seed N]
  terrain   --dem FILE --param elevation|slope|aspect|hillshade --out FILE
            [--tiles N] [--threads N]
  convert   --tiff FILE --store DIR --name NAME [--codec NAME]
            [--bits-per-block N]
  info      --store DIR --name NAME
  query     --store DIR --name NAME --out FILE [--region x0,y0,x1,y1]
            [--level N] [--field NAME] [--time N]
  render    --store DIR --name NAME --out FILE.ppm [--colormap NAME]
            [--level N] [--field NAME] [--time N]
  tutorial  [--seed N] [--endpoint local|dataverse|seal] [--size N]";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| NsdfError::invalid(format!("expected --option, got {a:?}")))?;
        let val = it.next().ok_or_else(|| NsdfError::invalid(format!("--{key} needs a value")))?;
        opts.insert(key.to_string(), val.clone());
    }
    Ok(opts)
}

fn req<'a>(opts: &'a Opts, key: &str) -> Result<&'a str> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| NsdfError::invalid(format!("missing required option --{key}")))
}

fn num<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| NsdfError::invalid(format!("--{key}: cannot parse {v:?}")))
        }
    }
}

fn gen_dem(opts: &Opts) -> Result<()> {
    let out = req(opts, "out")?;
    let size: usize = num(opts, "size", 512)?;
    let width: usize = num(opts, "width", size)?;
    let height: usize = num(opts, "height", size)?;
    let seed: u64 = num(opts, "seed", 2024)?;
    let dem = DemConfig::conus_like(width, height, seed).generate();
    let tiff = write_tiff(&dem, TiffCompression::PackBits)?;
    std::fs::write(out, &tiff)?;
    println!("wrote {width}x{height} DEM (seed {seed}) to {out} ({} bytes)", tiff.len());
    Ok(())
}

fn terrain(opts: &Opts) -> Result<()> {
    let dem_path = req(opts, "dem")?;
    let out = req(opts, "out")?;
    let param = TerrainParam::parse(req(opts, "param")?)?;
    let tiles: usize = num(opts, "tiles", 4)?;
    let threads: usize = num(opts, "threads", nsdf::util::par::num_threads())?;
    let dem = read_tiff::<f32>(&std::fs::read(dem_path)?)?;
    let plan = TilePlan::new(tiles, tiles, 1)?;
    let (result, stats) = compute_terrain_tiled(&dem, param, Sun::default(), &plan, threads)?;
    let tiff = write_tiff(&result, TiffCompression::PackBits)?;
    std::fs::write(out, &tiff)?;
    println!(
        "computed {} over {} tiles ({:.1}% halo overhead), wrote {out}",
        param.name(),
        stats.tiles,
        stats.halo_overhead() * 100.0
    );
    Ok(())
}

fn convert(opts: &Opts) -> Result<()> {
    let tiff_path = req(opts, "tiff")?;
    let store_dir = req(opts, "store")?;
    let name = req(opts, "name")?;
    let policy = CodecPolicy::parse(opts.get("codec").map(|s| s.as_str()).unwrap_or("zlib4"))?;
    let bpb: u32 = num(opts, "bits-per-block", 14)?;
    let raster = read_tiff::<f32>(&std::fs::read(tiff_path)?)?;
    let (w, h) = raster.shape();
    let store: Arc<dyn ObjectStore> = Arc::new(LocalStore::open(store_dir)?);
    let mut meta = IdxMeta::new_2d(
        name,
        w as u64,
        h as u64,
        vec![Field::new("value", DType::F32)?],
        bpb,
        Codec::Raw,
    )?
    .with_codec_policy(policy);
    if let Some(g) = raster.geo {
        meta = meta.with_geo(g);
    }
    let ds = IdxDataset::create(store, name, meta)?;
    let stats = ds.write_raster("value", 0, &raster)?;
    println!(
        "converted {tiff_path} -> {store_dir}/{name}: {} blocks, {} -> {} bytes ({:.1}% of raw)",
        stats.blocks_written,
        stats.bytes_raw,
        stats.bytes_stored,
        stats.compression_fraction() * 100.0
    );
    Ok(())
}

fn open_dataset(opts: &Opts) -> Result<IdxDataset> {
    let store_dir = req(opts, "store")?;
    let name = req(opts, "name")?;
    let store: Arc<dyn ObjectStore> = Arc::new(LocalStore::open(store_dir)?);
    IdxDataset::open(store, name)
}

fn info(opts: &Opts) -> Result<()> {
    let ds = open_dataset(opts)?;
    let m = ds.meta();
    println!("dataset:        {}", m.name);
    println!("dims:           {:?}", m.dims);
    println!("bitmask:        {}", m.bitmask.to_text());
    println!("max level:      {}", ds.max_level());
    println!("bits per block: {} ({} samples)", m.bits_per_block, m.block_samples());
    println!("codec:          {}", m.codec_policy.name());
    println!("timesteps:      {}", m.timesteps);
    println!(
        "fields:         {}",
        m.fields.iter().map(|f| format!("{}:{}", f.name, f.dtype)).collect::<Vec<_>>().join(", ")
    );
    if let Some(g) = m.geo {
        println!("geo:            origin ({}, {}), pixel ({}, {})", g.x0, g.y0, g.dx, g.dy);
    }
    Ok(())
}

fn query_raster(opts: &Opts, ds: &IdxDataset) -> Result<(Raster<f32>, u32)> {
    let field: String =
        opts.get("field").cloned().unwrap_or_else(|| ds.meta().fields[0].name.clone());
    let time: u32 = num(opts, "time", 0)?;
    let level: u32 = num(opts, "level", ds.max_level())?;
    let region = match opts.get("region") {
        None => ds.bounds(),
        Some(spec) => {
            let parts: Vec<i64> = spec
                .split(',')
                .map(|p| p.trim().parse().map_err(|_| NsdfError::invalid("bad --region")))
                .collect::<Result<_>>()?;
            if parts.len() != 4 {
                return Err(NsdfError::invalid("--region needs x0,y0,x1,y1"));
            }
            Box2i::new(parts[0], parts[1], parts[2], parts[3])
        }
    };
    let (raster, stats) = ds.read_box::<f32>(&field, time, region, level)?;
    eprintln!(
        "query: level {level}, {}x{} samples, {} blocks, {} bytes",
        raster.width(),
        raster.height(),
        stats.blocks_touched,
        stats.bytes_fetched
    );
    Ok((raster, level))
}

fn query(opts: &Opts) -> Result<()> {
    let ds = open_dataset(opts)?;
    let (raster, _) = query_raster(opts, &ds)?;
    let out = req(opts, "out")?;
    let tiff = write_tiff(&raster, TiffCompression::PackBits)?;
    std::fs::write(out, &tiff)?;
    println!("wrote {out} ({} bytes)", tiff.len());
    Ok(())
}

fn render_cmd(opts: &Opts) -> Result<()> {
    let ds = open_dataset(opts)?;
    let (raster, _) = query_raster(opts, &ds)?;
    let out = req(opts, "out")?;
    let colormap = Colormap::parse(opts.get("colormap").map(|s| s.as_str()).unwrap_or("viridis"))?;
    let img = nsdf::dashboard::render(&raster, colormap, RangeMode::Percentile(1.0, 99.0))?;
    std::fs::write(out, img.to_ppm())?;
    println!("wrote {out} ({}x{} px)", img.width, img.height);
    Ok(())
}

fn tutorial(opts: &Opts) -> Result<()> {
    let seed: u64 = num(opts, "seed", 2024)?;
    let size: usize = num(opts, "size", 512)?;
    let endpoint = opts.get("endpoint").map(|s| s.as_str()).unwrap_or("seal").to_string();
    let client = NsdfClient::simulated(seed);
    let mut cfg = TutorialConfig::small(seed);
    cfg.width = size;
    cfg.height = size / 2;
    cfg.storage_endpoint = endpoint;
    let report = run_tutorial(&client, &cfg)?;
    for s in &report.provenance.steps {
        println!("{:<28} {:>8.3}s", s.name, s.secs());
    }
    println!(
        "TIFF {} B -> IDX {} B (ratio {:.3}); validation exact: {}",
        report.tiff_bytes,
        report.idx_bytes,
        report.size_ratio(),
        report.validation_exact()
    );
    Ok(())
}
