//! # nsdf
//!
//! Umbrella crate for **nsdf-rs** — a from-scratch Rust reproduction of the
//! system stack taught in *Leveraging National Science Data Fabric Services
//! to Train Data Scientists* (Taufer et al., SC 2024): the OpenVisus-class
//! IDX multi-resolution data fabric, the GEOtiled terrain pipeline, the
//! NSDF storage/catalog/network services, a headless dashboard, and the
//! four-step tutorial workflow that ties them together.
//!
//! Each subsystem lives in its own crate and is re-exported here; the
//! [`prelude`] pulls in the types most programs need.
//!
//! ```
//! use nsdf::prelude::*;
//!
//! // Generate terrain, publish it as an IDX dataset, and query a region.
//! let dem = DemConfig::conus_like(128, 128, 7).generate();
//! let store: std::sync::Arc<dyn ObjectStore> = std::sync::Arc::new(MemoryStore::new());
//! let meta = IdxMeta::new_2d(
//!     "demo", 128, 128,
//!     vec![Field::new("elevation", DType::F32).unwrap()],
//!     10, Codec::ShuffleLzss { sample_size: 4 },
//! ).unwrap();
//! let ds = IdxDataset::create(store, "demo", meta).unwrap();
//! ds.write_raster("elevation", 0, &dem).unwrap();
//! let (overview, stats) = ds
//!     .read_box::<f32>("elevation", 0, ds.bounds(), ds.max_level() - 4)
//!     .unwrap();
//! assert_eq!(overview.shape(), (32, 32));
//! assert!(stats.blocks_touched > 0);
//! ```

pub use nsdf_catalog as catalog;
pub use nsdf_cloud as cloud;
pub use nsdf_compress as compress;
pub use nsdf_core as core;
pub use nsdf_dashboard as dashboard;
pub use nsdf_fuse as fuse;
pub use nsdf_geotiled as geotiled;
pub use nsdf_hz as hz;
pub use nsdf_idx as idx;
pub use nsdf_plugin as plugin;
pub use nsdf_somospie as somospie;
pub use nsdf_storage as storage;
pub use nsdf_tiff as tiff;
pub use nsdf_util as util;
pub use nsdf_workflow as workflow;

/// The types most nsdf-rs programs need.
pub mod prelude {
    pub use nsdf_catalog::{Catalog, Record};
    pub use nsdf_cloud::{provision, ClusterRequest, Provider};
    pub use nsdf_compress::{Codec, CodecPolicy, CompressionStats};
    pub use nsdf_core::{
        format_table1, run_fleet, run_tutorial, FleetClient, FleetConfig, FleetReport, NsdfClient,
        Session, SurveyModel, TutorialConfig,
    };
    pub use nsdf_dashboard::{Colormap, Dashboard, Image, RangeMode, VolumeExplorer};
    pub use nsdf_fuse::{Mapping, VirtualFs};
    pub use nsdf_geotiled::{
        compute_terrain, compute_terrain_tiled, DemConfig, Sun, TerrainParam, TilePlan,
    };
    pub use nsdf_hz::{BitMask, HzCurve};
    pub use nsdf_idx::{
        CancelToken, Field, IdxDataset, IdxMeta, QuerySession, SessionStats, VolumeSliceSession,
    };
    pub use nsdf_plugin::{run_campaign, select_entry_point, Testbed};
    pub use nsdf_somospie::{downscale_knn, KnnRegressor, SyntheticTruth};
    pub use nsdf_storage::{
        CachedStore, CloudStore, LocalStore, MemoryStore, NetworkProfile, ObjectStore, SchedPolicy,
        WanScheduler,
    };
    pub use nsdf_tiff::{read_tiff, tiff_info, write_tiff, TiffCompression};
    pub use nsdf_util::{
        AccuracyReport, Box2i, DType, GeoTransform, MetricsSnapshot, NsdfError, Obs, Raster,
        Result, SimClock,
    };
    pub use nsdf_workflow::{Artifact, RunContext, Workflow};
}
